#include "sketch/linear_kv_sketch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/random.h"

namespace kw {

namespace {

[[nodiscard]] SparseRecoveryConfig payload_config(const LinearKvConfig& c) {
  SparseRecoveryConfig pc;
  pc.max_coord = c.max_payload_coord;
  pc.budget = c.payload_budget;
  pc.rows = c.payload_rows;
  pc.seed = derive_seed(c.seed, 0x52);
  return pc;
}

}  // namespace

bool LinearKeyValueSketch::Cell::is_zero() const noexcept {
  if (!key_part.is_zero()) return false;
  return std::all_of(payload.begin(), payload.end(),
                     [](const OneSparseCell& c) { return c.is_zero(); });
}

LinearKeyValueSketch::LinearKeyValueSketch(const LinearKvConfig& config)
    : config_(config),
      cells_per_table_(std::max<std::size_t>(
          4, static_cast<std::size_t>(std::ceil(
                 static_cast<double>(config.capacity) / config.load_factor)))),
      key_basis_(derive_seed(config.seed, 0x51)),
      payload_geometry_(payload_config(config)),
      table_hashes_(config.tables, /*independence=*/4,
                    derive_seed(config.seed, 0x53)) {
  if (config.tables == 0) throw std::invalid_argument("tables must be > 0");
  if (config.load_factor <= 0.0 || config.load_factor > 1.0) {
    throw std::invalid_argument("load_factor must be in (0,1]");
  }
}

LinearKeyValueSketch::Cell LinearKeyValueSketch::make_cell() const {
  Cell cell;
  cell.payload.resize(payload_geometry_.cell_count());
  return cell;
}

std::uint64_t LinearKeyValueSketch::slot(std::size_t table,
                                         std::uint64_t key) const {
  return table * cells_per_table_ +
         table_hashes_[table].bucket(key, cells_per_table_);
}

void LinearKeyValueSketch::update(std::uint64_t key, std::int64_t key_delta,
                                  std::uint64_t payload_coord,
                                  std::int64_t payload_delta) {
  if (key >= config_.max_key) {
    throw std::out_of_range("kv sketch key out of range");
  }
  if (key_delta == 0 && payload_delta == 0) return;
  for (std::size_t t = 0; t < config_.tables; ++t) {
    const std::uint64_t s = slot(t, key);
    auto it = cells_.find(s);
    if (it == cells_.end()) it = cells_.emplace(s, make_cell()).first;
    Cell& cell = it->second;
    if (key_delta != 0) cell.key_part.add(key, key_delta, key_basis_);
    if (payload_delta != 0) {
      payload_geometry_.update_state(cell.payload, payload_coord,
                                     payload_delta);
    }
    if (cell.is_zero()) cells_.erase(it);
  }
}

void LinearKeyValueSketch::merge(const LinearKeyValueSketch& other,
                                 std::int64_t sign) {
  if (other.config_.seed != config_.seed ||
      other.config_.max_key != config_.max_key ||
      other.cells_per_table_ != cells_per_table_ ||
      other.config_.tables != config_.tables) {
    throw std::invalid_argument("merging incompatible kv sketches");
  }
  for (const auto& [slot_id, cell] : other.cells_) {
    auto it = cells_.find(slot_id);
    if (it == cells_.end()) it = cells_.emplace(slot_id, make_cell()).first;
    Cell& mine = it->second;
    mine.key_part.merge(cell.key_part, sign);
    for (std::size_t i = 0; i < mine.payload.size(); ++i) {
      mine.payload[i].merge(cell.payload[i], sign);
    }
    if (mine.is_zero()) cells_.erase(it);
  }
}

bool LinearKeyValueSketch::is_zero() const noexcept {
  return std::all_of(cells_.begin(), cells_.end(),
                     [](const auto& kv) { return kv.second.is_zero(); });
}

std::optional<std::vector<KvEntry>> LinearKeyValueSketch::decode() const {
  std::unordered_map<std::uint64_t, Cell> work = cells_;
  std::vector<KvEntry> found;

  // Peeling: find a cell whose key detector verifies one-sparse, record
  // (key, count, payload), subtract from all tables, repeat.
  while (true) {
    std::optional<KvEntry> next;
    for (const auto& [slot_id, cell] : work) {
      if (cell.is_zero()) continue;
      Recovered rec;
      if (cell.key_part.count != 0 &&
          classify_cell(cell.key_part, config_.max_key, key_basis_, &rec) ==
              CellState::kOneSparse) {
        KvEntry entry;
        entry.key = rec.coord;
        entry.key_count = rec.value;
        entry.payload = cell.payload;
        next = std::move(entry);
        break;
      }
      (void)slot_id;
    }
    if (!next.has_value()) break;

    // Subtract the recovered entry from every table position of its key.
    for (std::size_t t = 0; t < config_.tables; ++t) {
      const std::uint64_t s = slot(t, next->key);
      auto it = work.find(s);
      if (it == work.end()) it = work.emplace(s, make_cell()).first;
      OneSparseCell key_delta;
      key_delta.add(next->key, next->key_count, key_basis_);
      it->second.key_part.merge(key_delta, -1);
      for (std::size_t i = 0; i < it->second.payload.size(); ++i) {
        it->second.payload[i].merge(next->payload[i], -1);
      }
      if (it->second.is_zero()) work.erase(it);
    }
    found.push_back(std::move(*next));
  }

  const bool clean =
      std::all_of(work.begin(), work.end(),
                  [](const auto& kv) { return kv.second.is_zero(); });
  if (!clean) return std::nullopt;

  std::sort(found.begin(), found.end(),
            [](const KvEntry& a, const KvEntry& b) { return a.key < b.key; });
  // Defensive fold of duplicates (possible only under fingerprint collision).
  std::vector<KvEntry> out;
  for (auto& e : found) {
    if (!out.empty() && out.back().key == e.key) {
      out.back().key_count += e.key_count;
      for (std::size_t i = 0; i < out.back().payload.size(); ++i) {
        out.back().payload[i].merge(e.payload[i], 1);
      }
    } else {
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::optional<std::vector<Recovered>> LinearKeyValueSketch::decode_payload(
    const KvEntry& entry) const {
  return payload_geometry_.decode_state(entry.payload);
}

std::size_t LinearKeyValueSketch::nominal_bytes() const noexcept {
  const std::size_t cell_bytes =
      sizeof(OneSparseCell) * (1 + payload_geometry_.cell_count());
  return config_.tables * cells_per_table_ * cell_bytes +
         sizeof(LinearKvConfig);
}

std::size_t LinearKeyValueSketch::touched_bytes() const noexcept {
  const std::size_t cell_bytes =
      sizeof(OneSparseCell) * (1 + payload_geometry_.cell_count());
  return cells_.size() * cell_bytes + sizeof(LinearKvConfig);
}

}  // namespace kw
