// Union-find and offline connectivity utilities (ground truth for the AGM
// spanning-forest sketch of Theorem 10).
#ifndef KW_GRAPH_CONNECTIVITY_H
#define KW_GRAPH_CONNECTIVITY_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kw {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  // Representative with path halving.
  [[nodiscard]] std::size_t find(std::size_t x);

  // Returns true iff the sets were distinct (union by size).
  bool unite(std::size_t a, std::size_t b);

  [[nodiscard]] bool same(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

// Component label per vertex (labels are in [0, #components)).
[[nodiscard]] std::vector<std::uint32_t> connected_components(const Graph& g);

[[nodiscard]] std::size_t component_count(const Graph& g);

// Any spanning forest of g (edges of g), via union-find.
[[nodiscard]] std::vector<Edge> spanning_forest_offline(const Graph& g);

// True iff the two graphs (same vertex count) have identical connectivity
// partitions -- the acceptance criterion for AGM forest outputs.
[[nodiscard]] bool same_partition(const Graph& a, const Graph& b);

}  // namespace kw

#endif  // KW_GRAPH_CONNECTIVITY_H
