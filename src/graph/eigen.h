// Dense symmetric eigensolver (cyclic Jacobi rotations).
//
// Substrate for measuring spectral-sparsifier quality exactly: Corollary 2's
// guarantee (1-eps)G ⪯ H ⪯ (1+eps)G is checked via the eigenvalues of
// L_G^{+/2} L_H L_G^{+/2}.  O(n^3) per sweep; intended for n <= ~512.
#ifndef KW_GRAPH_EIGEN_H
#define KW_GRAPH_EIGEN_H

#include <vector>

#include "graph/laplacian.h"

namespace kw {

struct EigenDecomposition {
  std::vector<double> values;  // ascending
  DenseMatrix vectors;         // column j is the eigenvector of values[j]
  std::size_t sweeps = 0;
  bool converged = false;
};

// Jacobi eigenvalue algorithm for a symmetric matrix.  tolerance bounds the
// off-diagonal Frobenius mass at convergence relative to the matrix norm.
[[nodiscard]] EigenDecomposition symmetric_eigen(const DenseMatrix& a,
                                                 double tolerance = 1e-11,
                                                 std::size_t max_sweeps = 64);

}  // namespace kw

#endif  // KW_GRAPH_EIGEN_H
