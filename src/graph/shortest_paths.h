// Exact shortest paths and spanner-quality evaluation.
//
// Ground truth for the experiments: multiplicative stretch (Theorem 1) is
// evaluated per edge of G (the maximum stretch of a t-spanner is attained on
// an edge), additive distortion (Theorem 3) is evaluated over all pairs.
#ifndef KW_GRAPH_SHORTEST_PATHS_H
#define KW_GRAPH_SHORTEST_PATHS_H

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace kw {

inline constexpr std::uint32_t kUnreachableHops =
    std::numeric_limits<std::uint32_t>::max();
inline constexpr double kUnreachableDist =
    std::numeric_limits<double>::infinity();

// Unweighted single-source BFS distances (hops); kUnreachableHops if not
// connected to source.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       Vertex source);

// bfs_distances into a caller-owned buffer (resized/overwritten to g.n()):
// callers that bound their cache (e.g. the KP12 SpannerOracle) recycle one
// buffer through evictions instead of allocating per source.
void bfs_distances_into(const Graph& g, Vertex source,
                        std::vector<std::uint32_t>& dist);

// Weighted single-source Dijkstra distances; kUnreachableDist if unreachable.
// All edge weights must be nonnegative.
[[nodiscard]] std::vector<double> dijkstra_distances(const Graph& g,
                                                     Vertex source);

// All-pairs unweighted distances via n BFS runs (O(n*(n+m))).
[[nodiscard]] std::vector<std::vector<std::uint32_t>> all_pairs_hops(
    const Graph& g);

struct StretchReport {
  double max_stretch = 1.0;   // max over evaluated pairs of d_H / d_G
  double mean_stretch = 1.0;  // mean over evaluated pairs
  bool connected_ok = true;   // H connects everything G connects
  std::size_t pairs_evaluated = 0;
};

// Multiplicative stretch of subgraph H w.r.t. G, evaluated over the edges of
// G (sufficient for the worst case).  Uses hops when `weighted` is false and
// Dijkstra otherwise.  H must be on the same vertex set.
[[nodiscard]] StretchReport multiplicative_stretch(const Graph& g,
                                                   const Graph& h,
                                                   bool weighted);

struct AdditiveReport {
  std::uint64_t max_surplus = 0;   // max over pairs of d_H - d_G (hops)
  double mean_surplus = 0.0;       // mean over connected pairs
  bool connected_ok = true;
  std::size_t pairs_evaluated = 0;
};

// Additive distortion of H w.r.t. unweighted G over all connected pairs.
[[nodiscard]] AdditiveReport additive_surplus(const Graph& g, const Graph& h);

// Diameter in hops of the subgraph induced by `members` using only edges of
// g between members; returns kUnreachableHops if that induced subgraph is
// disconnected.  Used to validate the cluster-diameter induction (Lemma 13).
[[nodiscard]] std::uint32_t induced_diameter(const Graph& g,
                                             const std::vector<Vertex>& members);

}  // namespace kw

#endif  // KW_GRAPH_SHORTEST_PATHS_H
