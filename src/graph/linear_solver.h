// Conjugate-gradient solver for Laplacian systems L x = b, b ⟂ 1.
//
// Substrate for exact effective resistances (Theorem 7 context) on graphs too
// large for the dense eigensolver.  The solution is pinned to mean zero,
// which selects the pseudo-inverse solution on a connected graph.
#ifndef KW_GRAPH_LINEAR_SOLVER_H
#define KW_GRAPH_LINEAR_SOLVER_H

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kw {

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

struct CgOptions {
  double tolerance = 1e-9;     // relative residual ||r|| / ||b||
  std::size_t max_iterations = 0;  // 0 => 20n default
};

// Solves L_g x = b with the Jacobi (diagonal) preconditioner.  b must sum to
// ~0 per connected component; the caller is responsible for this (effective
// resistance right-hand sides do).  The returned x has mean zero.
[[nodiscard]] CgResult solve_laplacian(const Graph& g, std::span<const double> b,
                                       const CgOptions& options = {});

}  // namespace kw

#endif  // KW_GRAPH_LINEAR_SOLVER_H
