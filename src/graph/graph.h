// Core undirected weighted graph representation.
//
// The streaming algorithms never materialise the input graph (that is the
// point of the paper); this class exists for (a) workload generation, (b) the
// offline baselines, and (c) ground-truth evaluation of spanner stretch and
// sparsifier quality.
#ifndef KW_GRAPH_GRAPH_H
#define KW_GRAPH_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace kw {

using Vertex = std::uint32_t;
inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  double weight = 1.0;

  [[nodiscard]] bool operator==(const Edge& o) const noexcept {
    return u == o.u && v == o.v && weight == o.weight;
  }
};

// Canonical coordinate of the unordered pair {u,v}, u != v, in
// [0, n*(n-1)/2).  This is the index of the pair in the row-major upper
// triangle and is the coordinate space all edge sketches operate on.
[[nodiscard]] constexpr std::uint64_t pair_id(Vertex u, Vertex v,
                                              std::uint64_t n) noexcept {
  const std::uint64_t a = u < v ? u : v;
  const std::uint64_t b = u < v ? v : u;
  return a * n - a * (a + 1) / 2 + (b - a - 1);
}

struct VertexPair {
  Vertex u = 0;
  Vertex v = 0;
};

// Inverse of pair_id.
[[nodiscard]] VertexPair pair_from_id(std::uint64_t id, std::uint64_t n);

// Number of unordered pairs over n vertices.
[[nodiscard]] constexpr std::uint64_t num_pairs(std::uint64_t n) noexcept {
  return n * (n - 1) / 2;
}

struct Neighbor {
  Vertex to = 0;
  double weight = 1.0;
  std::uint32_t edge_index = 0;  // index into edges()
};

// Simple undirected weighted graph (no self-loops; parallel edges are
// allowed by add_edge but generators produce simple graphs).
class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex n) : n_(n), adjacency_(n) {}

  [[nodiscard]] Vertex n() const noexcept { return n_; }
  [[nodiscard]] std::size_t m() const noexcept { return edges_.size(); }

  // Adds undirected edge {u,v}; u != v, both < n().
  void add_edge(Vertex u, Vertex v, double weight = 1.0);

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  [[nodiscard]] std::span<const Neighbor> neighbors(Vertex v) const {
    return adjacency_[v];
  }

  [[nodiscard]] std::size_t degree(Vertex v) const {
    return adjacency_[v].size();
  }

  // O(deg) membership test.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  // Total edge weight.
  [[nodiscard]] double total_weight() const;

  // Returns the subgraph with the same vertex set and the given edge list.
  [[nodiscard]] static Graph from_edges(Vertex n,
                                        const std::vector<Edge>& edges);

 private:
  Vertex n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace kw

#endif  // KW_GRAPH_GRAPH_H
