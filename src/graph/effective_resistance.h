// Exact effective resistances (Section 2 / Theorem 7 substrate).
//
// R_e is the potential difference across e when a unit current is injected
// at one endpoint and extracted at the other: R_uv = (chi_u - chi_v)^T L^+
// (chi_u - chi_v).  Two backends: per-pair conjugate-gradient solves
// (scales to thousands of vertices) and a dense pseudo-inverse (for tests).
#ifndef KW_GRAPH_EFFECTIVE_RESISTANCE_H
#define KW_GRAPH_EFFECTIVE_RESISTANCE_H

#include <vector>

#include "graph/graph.h"

namespace kw {

// Effective resistance between a single pair (must be in the same connected
// component; returns +inf otherwise).
[[nodiscard]] double effective_resistance(const Graph& g, Vertex u, Vertex v);

// Effective resistance of every edge of g, via one CG solve per edge.
[[nodiscard]] std::vector<double> all_edge_resistances(const Graph& g);

// Dense-pseudo-inverse backend (O(n^3)); used to cross-check the CG path in
// tests and for small sparsifier experiments.
[[nodiscard]] std::vector<double> all_edge_resistances_dense(const Graph& g);

}  // namespace kw

#endif  // KW_GRAPH_EFFECTIVE_RESISTANCE_H
