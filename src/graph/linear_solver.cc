#include "graph/linear_solver.h"

#include <cmath>

#include "graph/laplacian.h"

namespace kw {

namespace {

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void center(std::vector<double>& x) {
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

}  // namespace

CgResult solve_laplacian(const Graph& g, std::span<const double> b,
                         const CgOptions& options) {
  const std::size_t n = g.n();
  CgResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner: inverse weighted degree (1 for isolated vertices
  // so the preconditioner stays positive definite on the working subspace).
  std::vector<double> inv_diag(n, 1.0);
  {
    std::vector<double> degree(n, 0.0);
    for (const auto& e : g.edges()) {
      degree[e.u] += e.weight;
      degree[e.v] += e.weight;
    }
    for (std::size_t i = 0; i < n; ++i) {
      inv_diag[i] = degree[i] > 0.0 ? 1.0 / degree[i] : 1.0;
    }
  }

  std::vector<double> r(b.begin(), b.end());
  center(r);
  const double b_norm = std::sqrt(dot(r, r));
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  center(z);
  std::vector<double> p = z;
  double rz = dot(r, z);

  const std::size_t max_iter =
      options.max_iterations > 0 ? options.max_iterations : 20 * n;

  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    const std::vector<double> lp = laplacian_multiply(g, p);
    const double p_lp = dot(p, lp);
    if (p_lp <= 0.0) break;  // numerical breakdown
    const double alpha = rz / p_lp;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * lp[i];
    }
    result.iterations = iter + 1;
    const double r_norm = std::sqrt(dot(r, r));
    result.residual_norm = r_norm;
    if (r_norm <= options.tolerance * b_norm) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    center(z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  center(result.x);
  return result;
}

}  // namespace kw
