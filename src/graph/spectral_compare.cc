#include "graph/spectral_compare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/eigen.h"
#include "graph/laplacian.h"
#include "util/random.h"

namespace kw {

SpectralEnvelope spectral_envelope(const Graph& g, const Graph& h) {
  if (g.n() != h.n()) {
    throw std::invalid_argument("spectral_envelope: vertex count mismatch");
  }
  const std::size_t n = g.n();
  SpectralEnvelope envelope;
  if (n == 0) return envelope;

  const EigenDecomposition eg = symmetric_eigen(laplacian_dense(g));
  const double lambda_max = eg.values.empty() ? 0.0 : eg.values.back();
  const double cutoff = 1e-9 * std::max(1.0, lambda_max);

  // Columns of Q: eigenvectors with nonzero eigenvalue, scaled by
  // lambda^{-1/2}; then M = Q^T L_H Q has the pencil eigenvalues.
  std::vector<std::size_t> support;
  for (std::size_t j = 0; j < n; ++j) {
    if (eg.values[j] > cutoff) support.push_back(j);
  }
  if (support.empty()) {
    envelope.comparable = h.m() == 0;
    return envelope;
  }
  const std::size_t k = support.size();
  DenseMatrix q(n, k);
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t j = support[c];
    const double scale = 1.0 / std::sqrt(eg.values[j]);
    for (std::size_t i = 0; i < n; ++i) {
      q.at(i, c) = eg.vectors.at(i, j) * scale;
    }
  }
  const DenseMatrix lh = laplacian_dense(h);
  const DenseMatrix m = q.transpose().multiply(lh.multiply(q));
  const EigenDecomposition em = symmetric_eigen(m);
  envelope.min_eigenvalue = em.values.front();
  envelope.max_eigenvalue = em.values.back();

  // H has mass outside range(L_G) iff x^T L_H x > 0 for some null vector x
  // of L_G; equivalent to trace(L_H) > trace of projected part (within tol).
  double trace_lh = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace_lh += lh.at(i, i);
  double trace_projected = 0.0;
  // trace(Q_0^T L_H Q_0) over null directions = trace_lh - trace(P L_H) with
  // P the range projector; compute via the non-null eigenvectors directly.
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t j = support[c];
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = eg.vectors.at(i, j);
    const std::vector<double> lhx = lh.multiply(col);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += col[i] * lhx[i];
    trace_projected += acc;
  }
  envelope.comparable =
      trace_lh - trace_projected <= 1e-6 * std::max(1.0, trace_lh);
  return envelope;
}

CutReport compare_cuts(const Graph& g, const Graph& h, std::size_t samples,
                       std::uint64_t seed) {
  if (g.n() != h.n()) {
    throw std::invalid_argument("compare_cuts: vertex count mismatch");
  }
  CutReport report;
  Rng rng(seed);
  double sum = 0.0;
  auto evaluate = [&](const std::vector<bool>& side) {
    const double wg = cut_weight(g, side);
    if (wg <= 0.0) return;
    const double wh = cut_weight(h, side);
    const double err = std::abs(wh / wg - 1.0);
    report.max_relative_error = std::max(report.max_relative_error, err);
    sum += err;
    ++report.cuts_evaluated;
  };

  std::vector<bool> side(g.n(), false);
  // Singleton cuts.
  for (Vertex v = 0; v < g.n(); ++v) {
    side.assign(g.n(), false);
    side[v] = true;
    evaluate(side);
  }
  // Random bisections.
  for (std::size_t s = 0; s < samples; ++s) {
    for (Vertex v = 0; v < g.n(); ++v) side[v] = rng.next_bernoulli(0.5);
    evaluate(side);
  }
  if (report.cuts_evaluated > 0) {
    report.mean_relative_error =
        sum / static_cast<double>(report.cuts_evaluated);
  }
  return report;
}

double max_quadratic_form_error(const Graph& g, const Graph& h,
                                std::size_t samples, std::uint64_t seed) {
  if (g.n() != h.n()) {
    throw std::invalid_argument(
        "max_quadratic_form_error: vertex count mismatch");
  }
  Rng rng(seed);
  double worst = 0.0;
  std::vector<double> x(g.n());
  for (std::size_t s = 0; s < samples; ++s) {
    // Box-Muller standard normals; Laplacian forms ignore the mean shift.
    for (std::size_t i = 0; i < x.size(); i += 2) {
      const double u1 = std::max(rng.next_double(), 1e-300);
      const double u2 = rng.next_double();
      const double radius = std::sqrt(-2.0 * std::log(u1));
      x[i] = radius * std::cos(2.0 * 3.141592653589793 * u2);
      if (i + 1 < x.size()) {
        x[i + 1] = radius * std::sin(2.0 * 3.141592653589793 * u2);
      }
    }
    const double qg = laplacian_quadratic_form(g, x);
    if (qg <= 0.0) continue;
    const double qh = laplacian_quadratic_form(h, x);
    worst = std::max(worst, std::abs(qh / qg - 1.0));
  }
  return worst;
}

}  // namespace kw
