#include "graph/effective_resistance.h"

#include <limits>

#include "graph/connectivity.h"
#include "graph/eigen.h"
#include "graph/laplacian.h"
#include "graph/linear_solver.h"

namespace kw {

double effective_resistance(const Graph& g, Vertex u, Vertex v) {
  if (u == v) return 0.0;
  std::vector<double> b(g.n(), 0.0);
  b[u] = 1.0;
  b[v] = -1.0;
  const CgResult solve = solve_laplacian(g, b);
  if (!solve.converged) {
    // Either disconnected pair (b not in range) or stagnation; check which.
    const auto labels = connected_components(g);
    if (labels[u] != labels[v]) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return solve.x[u] - solve.x[v];
}

std::vector<double> all_edge_resistances(const Graph& g) {
  std::vector<double> r;
  r.reserve(g.m());
  for (const auto& e : g.edges()) {
    r.push_back(effective_resistance(g, e.u, e.v));
  }
  return r;
}

std::vector<double> all_edge_resistances_dense(const Graph& g) {
  const DenseMatrix l = laplacian_dense(g);
  const EigenDecomposition eig = symmetric_eigen(l);
  const std::size_t n = g.n();
  // Pseudo-inverse: sum over nonzero eigenvalues of (1/lambda) q q^T.
  // Tolerance keeps the all-ones nullspace (and any component nullspaces)
  // out of the inverse.
  const double cutoff =
      1e-9 * (eig.values.empty() ? 1.0 : std::max(1.0, eig.values.back()));
  std::vector<double> r;
  r.reserve(g.m());
  for (const auto& e : g.edges()) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (eig.values[j] <= cutoff) continue;
      const double comp = eig.vectors.at(e.u, j) - eig.vectors.at(e.v, j);
      acc += comp * comp / eig.values[j];
    }
    r.push_back(acc);
  }
  return r;
}

}  // namespace kw
