// Exact spectral-approximation measurement (Definition 6 / Corollary 2).
//
// H is an eps-spectral sparsifier of G iff all eigenvalues of the pencil
// (L_H, L_G) restricted to range(L_G) lie in [1-eps, 1+eps].  We compute
// that envelope exactly with the dense eigensolver, and also report cut
// preservation over sampled cuts (the binary-x special case the paper
// mentions).
#ifndef KW_GRAPH_SPECTRAL_COMPARE_H
#define KW_GRAPH_SPECTRAL_COMPARE_H

#include <cstdint>

#include "graph/graph.h"

namespace kw {

struct SpectralEnvelope {
  double min_eigenvalue = 1.0;  // lambda_min of L_G^{+/2} L_H L_G^{+/2}
  double max_eigenvalue = 1.0;  // lambda_max of the same pencil
  bool comparable = true;       // false if H has weight outside range(L_G)

  // Smallest eps such that (1-eps)G <= H <= (1+eps)G.
  [[nodiscard]] double epsilon() const {
    const double lo = 1.0 - min_eigenvalue;
    const double hi = max_eigenvalue - 1.0;
    return lo > hi ? lo : hi;
  }
};

// Exact pencil eigenvalue envelope; O(n^3).  Requires same vertex count.
[[nodiscard]] SpectralEnvelope spectral_envelope(const Graph& g,
                                                 const Graph& h);

struct CutReport {
  double max_relative_error = 0.0;  // max over sampled cuts |w_H/w_G - 1|
  double mean_relative_error = 0.0;
  std::size_t cuts_evaluated = 0;
};

// Relative cut error over `samples` random bisections plus all singleton
// (degree) cuts.  Cheap (O(samples * m)); usable at any n.
[[nodiscard]] CutReport compare_cuts(const Graph& g, const Graph& h,
                                     std::size_t samples, std::uint64_t seed);

// Quadratic-form relative error over `samples` random dense unit vectors --
// a cheap Monte-Carlo proxy for the exact envelope at large n.
[[nodiscard]] double max_quadratic_form_error(const Graph& g, const Graph& h,
                                              std::size_t samples,
                                              std::uint64_t seed);

}  // namespace kw

#endif  // KW_GRAPH_SPECTRAL_COMPARE_H
