#include "graph/min_cut.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/connectivity.h"

namespace kw {

MinCutResult stoer_wagner_min_cut(const Graph& g) {
  const std::size_t n = g.n();
  MinCutResult result;
  result.side.assign(n, false);
  if (n < 2 || component_count(g) > 1) {
    result.connected = component_count(g) <= 1 && n >= 2;
    result.weight = 0.0;
    return result;
  }

  // Dense weight matrix; supernodes merge rows/columns.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const auto& e : g.edges()) {
    w[e.u][e.v] += e.weight;
    w[e.v][e.u] += e.weight;
  }
  // members[i]: original vertices merged into supernode i.
  std::vector<std::vector<Vertex>> members(n);
  for (Vertex v = 0; v < n; ++v) members[v] = {v};
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;

  double best = std::numeric_limits<double>::infinity();
  std::vector<Vertex> best_shore;

  while (active.size() > 1) {
    // Maximum adjacency (minimum cut phase) from an arbitrary start.
    std::vector<double> weight_to_a(n, 0.0);
    std::vector<char> in_a(n, 0);
    std::size_t prev = active[0];
    in_a[prev] = 1;
    for (const std::size_t v : active) {
      if (v != prev) weight_to_a[v] = w[prev][v];
    }
    std::size_t last = prev;
    for (std::size_t step = 1; step < active.size(); ++step) {
      std::size_t pick = n;
      double pick_weight = -1.0;
      for (const std::size_t v : active) {
        if (!in_a[v] && weight_to_a[v] > pick_weight) {
          pick_weight = weight_to_a[v];
          pick = v;
        }
      }
      in_a[pick] = 1;
      prev = last;
      last = pick;
      for (const std::size_t v : active) {
        if (!in_a[v]) weight_to_a[v] += w[pick][v];
      }
    }
    // Cut-of-the-phase: {last} vs rest.
    if (weight_to_a[last] < best) {
      best = weight_to_a[last];
      best_shore = members[last];
    }
    // Merge last into prev.
    for (const std::size_t v : active) {
      if (v == last || v == prev) continue;
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
    members[prev].insert(members[prev].end(), members[last].begin(),
                         members[last].end());
    active.erase(std::find(active.begin(), active.end(), last));
  }

  result.weight = best;
  for (const Vertex v : best_shore) result.side[v] = true;
  return result;
}

std::size_t edge_connectivity(const Graph& g) {
  const MinCutResult cut = stoer_wagner_min_cut(g);
  if (!cut.connected) return 0;
  return static_cast<std::size_t>(std::llround(cut.weight));
}

}  // namespace kw
