// Synthetic graph workloads.
//
// The paper has no dataset; its algorithms are evaluated here on the graph
// families streaming papers traditionally use: Erdos-Renyi, preferential
// attachment, bounded-degree meshes (grid/hypercube), paths/cycles (worst
// case for distances), barbells (worst case for cuts/conductance) and random
// regular graphs (expanders, worst case for sparsification).
#ifndef KW_GRAPH_GENERATORS_H
#define KW_GRAPH_GENERATORS_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kw {

// G(n, p): every pair independently with probability p.
[[nodiscard]] Graph erdos_renyi_gnp(Vertex n, double p, std::uint64_t seed);

// G(n, m): exactly m distinct uniform edges (m <= n*(n-1)/2).
[[nodiscard]] Graph erdos_renyi_gnm(Vertex n, std::uint64_t m,
                                    std::uint64_t seed);

// Path 0-1-...-(n-1).
[[nodiscard]] Graph path_graph(Vertex n);

// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle_graph(Vertex n);

// rows x cols grid mesh.
[[nodiscard]] Graph grid_graph(Vertex rows, Vertex cols);

// Complete graph K_n.
[[nodiscard]] Graph complete_graph(Vertex n);

// Star with center 0.
[[nodiscard]] Graph star_graph(Vertex n);

// Hypercube on 2^dim vertices.
[[nodiscard]] Graph hypercube_graph(std::uint32_t dim);

// Two cliques of size clique_n joined by a path of path_len edges.
[[nodiscard]] Graph barbell_graph(Vertex clique_n, Vertex path_len);

// Random d-regular-ish multigraph via the configuration model with rejection
// of self-loops and duplicates; the result is simple, degrees may be d-1 for
// a few vertices.  Good expander whp for d >= 3.
[[nodiscard]] Graph random_regular_graph(Vertex n, std::uint32_t d,
                                         std::uint64_t seed);

// Barabasi-Albert preferential attachment: each new vertex attaches
// `edges_per_vertex` edges to existing vertices proportionally to degree.
[[nodiscard]] Graph barabasi_albert_graph(Vertex n,
                                          std::uint32_t edges_per_vertex,
                                          std::uint64_t seed);

// Copy of g with each edge weight drawn uniformly from [wmin, wmax].
[[nodiscard]] Graph with_random_weights(const Graph& g, double wmin,
                                        double wmax, std::uint64_t seed);

// Copy of g with weights drawn from a geometric ladder
// {wmin, 2*wmin, 4*wmin, ...} capped at wmax; exercises the weight-class
// machinery of Remark 14 directly.
[[nodiscard]] Graph with_geometric_weights(const Graph& g, double wmin,
                                           double wmax, std::uint64_t seed);

// Named family lookup used by benches: "er", "ba", "grid", "hypercube",
// "regular", "path", "cycle", "barbell".  Target_m is advisory (families
// with fixed density ignore it).  Throws std::invalid_argument for unknown
// names.
[[nodiscard]] Graph make_family(const std::string& family, Vertex n,
                                std::uint64_t target_m, std::uint64_t seed);

}  // namespace kw

#endif  // KW_GRAPH_GENERATORS_H
