#include "graph/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kw {

EigenDecomposition symmetric_eigen(const DenseMatrix& a, double tolerance,
                                   std::size_t max_sweeps) {
  const std::size_t n = a.rows();
  EigenDecomposition result;
  DenseMatrix m = a;
  DenseMatrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  auto off_diagonal_norm = [&m, n]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) acc += m.at(i, j) * m.at(i, j);
    }
    return std::sqrt(acc);
  };
  double frob = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) frob += m.at(i, j) * m.at(i, j);
  }
  frob = std::sqrt(frob);
  const double target = tolerance * std::max(frob, 1e-300);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    result.sweeps = sweep + 1;
    if (off_diagonal_norm() <= target) {
      result.converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m.at(p, p);
        const double aqq = m.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m.at(k, p);
          const double mkq = m.at(k, q);
          m.at(k, p) = c * mkp - s * mkq;
          m.at(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m.at(p, k);
          const double mqk = m.at(q, k);
          m.at(p, k) = c * mpk - s * mqk;
          m.at(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!result.converged && off_diagonal_norm() <= target) {
    result.converged = true;
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&m](std::size_t x, std::size_t y) {
    return m.at(x, x) < m.at(y, y);
  });
  result.values.resize(n);
  result.vectors = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = m.at(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors.at(i, j) = v.at(i, order[j]);
    }
  }
  return result;
}

}  // namespace kw
