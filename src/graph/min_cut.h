// Global minimum cut (Stoer-Wagner) -- ground truth for the k-connectivity
// certificate extension and for cut-preservation audits.
#ifndef KW_GRAPH_MIN_CUT_H
#define KW_GRAPH_MIN_CUT_H

#include <vector>

#include "graph/graph.h"

namespace kw {

struct MinCutResult {
  double weight = 0.0;             // total weight crossing the cut
  std::vector<bool> side;          // side[v]: v is in the smaller shore
  bool connected = true;           // false => weight 0, arbitrary sides
};

// Stoer-Wagner minimum cut, O(n^3).  Parallel edges add their weights.
// For an unweighted graph the result is the edge connectivity.
[[nodiscard]] MinCutResult stoer_wagner_min_cut(const Graph& g);

// Unweighted edge connectivity (0 when disconnected or n < 2).
[[nodiscard]] std::size_t edge_connectivity(const Graph& g);

}  // namespace kw

#endif  // KW_GRAPH_MIN_CUT_H
