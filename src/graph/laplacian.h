// Graph Laplacians: quadratic forms, matvec, dense materialisation.
//
// L_G(i,j) = -w(i,j), L_G(i,i) = sum_j w(i,j) (Section 2 of the paper).
// The sparsifier experiments need x^T L x evaluation (Definition 6), dense
// Laplacians for the Jacobi eigensolver, and matvec for conjugate gradient.
#ifndef KW_GRAPH_LAPLACIAN_H
#define KW_GRAPH_LAPLACIAN_H

#include <span>
#include <vector>

#include "graph/graph.h"

namespace kw {

// Dense symmetric matrix, row-major n x n.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<double> multiply(
      std::span<const double> x) const;

  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  [[nodiscard]] DenseMatrix transpose() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// x^T L_g x computed edge-wise: sum_e w_e (x_u - x_v)^2.  O(m), exact, and
// never materialises L.
[[nodiscard]] double laplacian_quadratic_form(const Graph& g,
                                              std::span<const double> x);

// y = L_g x, edge-wise, O(m).
[[nodiscard]] std::vector<double> laplacian_multiply(const Graph& g,
                                                     std::span<const double> x);

// Dense Laplacian of g.
[[nodiscard]] DenseMatrix laplacian_dense(const Graph& g);

// Weight of the cut (S, V\S) where S = {v : in_cut[v]}.  Equals the
// quadratic form at the 0/1 indicator, the cut-preservation special case of
// spectral approximation.
[[nodiscard]] double cut_weight(const Graph& g, const std::vector<bool>& in_cut);

}  // namespace kw

#endif  // KW_GRAPH_LAPLACIAN_H
