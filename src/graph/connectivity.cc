#include "graph/connectivity.h"

#include <numeric>

namespace kw {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), components_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --components_;
  return true;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  UnionFind uf(g.n());
  for (const auto& e : g.edges()) uf.unite(e.u, e.v);
  std::vector<std::uint32_t> label(g.n(), 0);
  std::vector<std::uint32_t> remap(g.n(), static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (Vertex v = 0; v < g.n(); ++v) {
    const std::size_t root = uf.find(v);
    if (remap[root] == static_cast<std::uint32_t>(-1)) remap[root] = next++;
    label[v] = remap[root];
  }
  return label;
}

std::size_t component_count(const Graph& g) {
  UnionFind uf(g.n());
  for (const auto& e : g.edges()) uf.unite(e.u, e.v);
  return uf.component_count();
}

std::vector<Edge> spanning_forest_offline(const Graph& g) {
  UnionFind uf(g.n());
  std::vector<Edge> forest;
  for (const auto& e : g.edges()) {
    if (uf.unite(e.u, e.v)) forest.push_back(e);
  }
  return forest;
}

bool same_partition(const Graph& a, const Graph& b) {
  if (a.n() != b.n()) return false;
  const auto la = connected_components(a);
  const auto lb = connected_components(b);
  // Same partition iff the label pairs induce a bijection.
  std::vector<std::uint32_t> a_to_b(a.n(), static_cast<std::uint32_t>(-1));
  std::vector<std::uint32_t> b_to_a(b.n(), static_cast<std::uint32_t>(-1));
  for (Vertex v = 0; v < a.n(); ++v) {
    if (a_to_b[la[v]] == static_cast<std::uint32_t>(-1)) a_to_b[la[v]] = lb[v];
    if (b_to_a[lb[v]] == static_cast<std::uint32_t>(-1)) b_to_a[lb[v]] = la[v];
    if (a_to_b[la[v]] != lb[v] || b_to_a[lb[v]] != la[v]) return false;
  }
  return true;
}

}  // namespace kw
