#include "graph/graph.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace kw {

VertexPair pair_from_id(std::uint64_t id, std::uint64_t n) {
  // Solve for the row a: the largest a with a*n - a*(a+1)/2 <= id.  Use the
  // closed-form estimate from the quadratic and fix up by +-1 to dodge
  // floating point error.
  const double nd = static_cast<double>(n);
  double est = nd - 0.5 -
               std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(id));
  auto a = static_cast<std::uint64_t>(est);
  if (a >= n) a = n - 1;
  auto row_start = [n](std::uint64_t r) { return r * n - r * (r + 1) / 2; };
  while (a > 0 && row_start(a) > id) --a;
  while (a + 1 < n && row_start(a + 1) <= id) ++a;
  const std::uint64_t b = a + 1 + (id - row_start(a));
  return {static_cast<Vertex>(a), static_cast<Vertex>(b)};
}

void Graph::add_edge(Vertex u, Vertex v, double weight) {
  if (u == v) throw std::invalid_argument("self-loops are not allowed");
  if (u >= n_ || v >= n_) throw std::out_of_range("vertex out of range");
  const auto index = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back({v, weight, index});
  adjacency_[v].push_back({u, weight, index});
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) return false;
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const Vertex target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  for (const auto& nb : smaller) {
    if (nb.to == target) return true;
  }
  return false;
}

double Graph::total_weight() const {
  double sum = 0.0;
  for (const auto& e : edges_) sum += e.weight;
  return sum;
}

Graph Graph::from_edges(Vertex n, const std::vector<Edge>& edges) {
  Graph g(n);
  for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
  return g;
}

}  // namespace kw
