#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/random.h"

namespace kw {

Graph erdos_renyi_gnp(Vertex n, double p, std::uint64_t seed) {
  Graph g(n);
  if (p <= 0.0 || n < 2) return g;
  Rng rng(seed);
  if (p >= 1.0) return complete_graph(n);
  // Geometric skipping: jump between successful pairs directly, O(m) time.
  // The gap before the next success is Geometric(p): floor(ln(1-r)/ln(1-p)).
  const double log1mp = std::log1p(-p);
  std::uint64_t pair = 0;
  const std::uint64_t total = num_pairs(n);
  while (true) {
    const double r = rng.next_double();
    const auto skip =
        static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log1mp));
    pair += skip;
    if (pair >= total) break;
    const auto [u, v] = pair_from_id(pair, n);
    g.add_edge(u, v);
    ++pair;
  }
  return g;
}

Graph erdos_renyi_gnm(Vertex n, std::uint64_t m, std::uint64_t seed) {
  const std::uint64_t total = num_pairs(n);
  if (m > total) throw std::invalid_argument("gnm: m exceeds pair count");
  Graph g(n);
  Rng rng(seed);
  // Floyd's sampling of m distinct pair ids.
  std::set<std::uint64_t> chosen;
  for (std::uint64_t j = total - m; j < total; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    const std::uint64_t pick = chosen.contains(t) ? j : t;
    chosen.insert(pick);
  }
  for (const std::uint64_t id : chosen) {
    const auto [u, v] = pair_from_id(id, n);
    g.add_edge(u, v);
  }
  return g;
}

Graph path_graph(Vertex n) {
  Graph g(n);
  for (Vertex i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(Vertex n) {
  if (n < 3) throw std::invalid_argument("cycle needs n >= 3");
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph grid_graph(Vertex rows, Vertex cols) {
  Graph g(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph complete_graph(Vertex n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star_graph(Vertex n) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph hypercube_graph(std::uint32_t dim) {
  const Vertex n = static_cast<Vertex>(1) << dim;
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < dim; ++b) {
      const Vertex w = v ^ (static_cast<Vertex>(1) << b);
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

Graph barbell_graph(Vertex clique_n, Vertex path_len) {
  const Vertex n = 2 * clique_n + (path_len > 0 ? path_len - 1 : 0);
  Graph g(n);
  auto add_clique = [&g](Vertex base, Vertex size) {
    for (Vertex u = 0; u < size; ++u) {
      for (Vertex v = u + 1; v < size; ++v) g.add_edge(base + u, base + v);
    }
  };
  add_clique(0, clique_n);
  add_clique(clique_n, clique_n);
  // Path from vertex 0 of the first clique to vertex 0 of the second.
  Vertex prev = 0;
  for (Vertex i = 0; i + 1 < path_len; ++i) {
    const Vertex mid = 2 * clique_n + i;
    g.add_edge(prev, mid);
    prev = mid;
  }
  if (path_len > 0) g.add_edge(prev, clique_n);
  return g;
}

Graph random_regular_graph(Vertex n, std::uint32_t d, std::uint64_t seed) {
  if (static_cast<std::uint64_t>(n) * d % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  Rng rng(seed);
  // Configuration model: pair up d copies of each vertex, rejecting
  // self-loops and parallel edges; a handful of stubs may stay unmatched.
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  Graph g(n);
  std::set<std::pair<Vertex, Vertex>> used;
  for (int attempt = 0; attempt < 200 && stubs.size() >= 2; ++attempt) {
    // Fisher-Yates shuffle, then greedily match adjacent stubs.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const std::size_t j = rng.next_below(i);
      std::swap(stubs[i - 1], stubs[j]);
    }
    std::vector<Vertex> leftover;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      Vertex a = stubs[i];
      Vertex b = stubs[i + 1];
      if (a == b || used.contains({std::min(a, b), std::max(a, b)})) {
        leftover.push_back(a);
        leftover.push_back(b);
        continue;
      }
      used.insert({std::min(a, b), std::max(a, b)});
      g.add_edge(a, b);
    }
    if (stubs.size() % 2 == 1) leftover.push_back(stubs.back());
    stubs = std::move(leftover);
  }
  return g;
}

Graph barabasi_albert_graph(Vertex n, std::uint32_t edges_per_vertex,
                            std::uint64_t seed) {
  if (n <= edges_per_vertex) {
    throw std::invalid_argument("barabasi_albert: need n > edges_per_vertex");
  }
  Rng rng(seed);
  Graph g(n);
  // Seed clique over the first edges_per_vertex+1 vertices.
  const Vertex seed_n = edges_per_vertex + 1;
  std::vector<Vertex> endpoint_pool;  // degree-proportional sampling pool
  for (Vertex u = 0; u < seed_n; ++u) {
    for (Vertex v = u + 1; v < seed_n; ++v) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (Vertex v = seed_n; v < n; ++v) {
    std::set<Vertex> targets;
    while (targets.size() < edges_per_vertex) {
      const Vertex t = endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (t != v) targets.insert(t);
    }
    for (const Vertex t : targets) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

Graph with_random_weights(const Graph& g, double wmin, double wmax,
                          std::uint64_t seed) {
  Rng rng(seed);
  Graph out(g.n());
  for (const auto& e : g.edges()) {
    out.add_edge(e.u, e.v, wmin + (wmax - wmin) * rng.next_double());
  }
  return out;
}

Graph with_geometric_weights(const Graph& g, double wmin, double wmax,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> ladder;
  for (double w = wmin; w <= wmax * (1 + 1e-12); w *= 2.0) ladder.push_back(w);
  Graph out(g.n());
  for (const auto& e : g.edges()) {
    out.add_edge(e.u, e.v, ladder[rng.next_below(ladder.size())]);
  }
  return out;
}

Graph make_family(const std::string& family, Vertex n, std::uint64_t target_m,
                  std::uint64_t seed) {
  if (family == "er") {
    const std::uint64_t m = std::min<std::uint64_t>(target_m, num_pairs(n));
    return erdos_renyi_gnm(n, m, seed);
  }
  if (family == "ba") {
    const std::uint32_t per =
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(target_m / n));
    return barabasi_albert_graph(n, per, seed);
  }
  if (family == "grid") {
    const auto side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
    return grid_graph(side, side);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 0;
    while ((static_cast<Vertex>(1) << (dim + 1)) <= n) ++dim;
    return hypercube_graph(dim);
  }
  if (family == "regular") {
    std::uint32_t d =
        std::max<std::uint32_t>(2, static_cast<std::uint32_t>(2 * target_m / n));
    if (static_cast<std::uint64_t>(n) * d % 2 != 0) ++d;
    return random_regular_graph(n, d, seed);
  }
  if (family == "path") return path_graph(n);
  if (family == "cycle") return cycle_graph(n);
  if (family == "barbell") return barbell_graph(n / 3, n / 3);
  throw std::invalid_argument("unknown graph family: " + family);
}

}  // namespace kw
