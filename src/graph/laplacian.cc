#include "graph/laplacian.h"

#include <cassert>

namespace kw {

std::vector<double> DenseMatrix::multiply(std::span<const double> x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  assert(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) += a * other.at(k, j);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

double laplacian_quadratic_form(const Graph& g, std::span<const double> x) {
  double acc = 0.0;
  for (const auto& e : g.edges()) {
    const double d = x[e.u] - x[e.v];
    acc += e.weight * d * d;
  }
  return acc;
}

std::vector<double> laplacian_multiply(const Graph& g,
                                       std::span<const double> x) {
  std::vector<double> y(g.n(), 0.0);
  for (const auto& e : g.edges()) {
    const double d = x[e.u] - x[e.v];
    y[e.u] += e.weight * d;
    y[e.v] -= e.weight * d;
  }
  return y;
}

DenseMatrix laplacian_dense(const Graph& g) {
  DenseMatrix l(g.n(), g.n());
  for (const auto& e : g.edges()) {
    l.at(e.u, e.u) += e.weight;
    l.at(e.v, e.v) += e.weight;
    l.at(e.u, e.v) -= e.weight;
    l.at(e.v, e.u) -= e.weight;
  }
  return l;
}

double cut_weight(const Graph& g, const std::vector<bool>& in_cut) {
  double acc = 0.0;
  for (const auto& e : g.edges()) {
    if (in_cut[e.u] != in_cut[e.v]) acc += e.weight;
  }
  return acc;
}

}  // namespace kw
