#include "graph/shortest_paths.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace kw {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> dist;
  bfs_distances_into(g, source, dist);
  return dist;
}

void bfs_distances_into(const Graph& g, Vertex source,
                        std::vector<std::uint32_t>& dist) {
  dist.assign(g.n(), kUnreachableHops);
  std::vector<Vertex> frontier{source};
  dist[source] = 0;
  std::uint32_t level = 0;
  std::vector<Vertex> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const Vertex v : frontier) {
      for (const auto& nb : g.neighbors(v)) {
        if (dist[nb.to] == kUnreachableHops) {
          dist[nb.to] = level;
          next.push_back(nb.to);
        }
      }
    }
    frontier.swap(next);
  }
}

std::vector<double> dijkstra_distances(const Graph& g, Vertex source) {
  std::vector<double> dist(g.n(), kUnreachableDist);
  using Item = std::pair<double, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const auto& nb : g.neighbors(v)) {
      const double cand = d + nb.weight;
      if (cand < dist[nb.to]) {
        dist[nb.to] = cand;
        heap.push({cand, nb.to});
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::uint32_t>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> result;
  result.reserve(g.n());
  for (Vertex v = 0; v < g.n(); ++v) result.push_back(bfs_distances(g, v));
  return result;
}

StretchReport multiplicative_stretch(const Graph& g, const Graph& h,
                                     bool weighted) {
  StretchReport report;
  if (g.m() == 0) return report;
  // Group G's edges by source endpoint so each vertex needs one SSSP in H.
  std::vector<std::vector<const Edge*>> by_source(g.n());
  for (const auto& e : g.edges()) by_source[e.u].push_back(&e);

  double sum = 0.0;
  for (Vertex s = 0; s < g.n(); ++s) {
    if (by_source[s].empty()) continue;
    std::vector<double> dist_h;
    std::vector<std::uint32_t> hops_h;
    if (weighted) {
      dist_h = dijkstra_distances(h, s);
    } else {
      hops_h = bfs_distances(h, s);
    }
    for (const Edge* e : by_source[s]) {
      double dh;
      double dg;
      if (weighted) {
        dh = dist_h[e->v];
        dg = e->weight;  // d_G(u,v) <= w(e); stretch vs the edge weight is
                         // the standard (conservative) per-edge bound
      } else {
        dh = hops_h[e->v] == kUnreachableHops
                 ? kUnreachableDist
                 : static_cast<double>(hops_h[e->v]);
        dg = 1.0;
      }
      ++report.pairs_evaluated;
      if (dh == kUnreachableDist) {
        report.connected_ok = false;
        continue;
      }
      const double stretch = dh / dg;
      report.max_stretch = std::max(report.max_stretch, stretch);
      sum += stretch;
    }
  }
  if (report.pairs_evaluated > 0) {
    report.mean_stretch = sum / static_cast<double>(report.pairs_evaluated);
  }
  return report;
}

AdditiveReport additive_surplus(const Graph& g, const Graph& h) {
  AdditiveReport report;
  double sum = 0.0;
  for (Vertex s = 0; s < g.n(); ++s) {
    const auto dg = bfs_distances(g, s);
    const auto dh = bfs_distances(h, s);
    for (Vertex t = s + 1; t < g.n(); ++t) {
      if (dg[t] == kUnreachableHops) continue;  // pair not connected in G
      ++report.pairs_evaluated;
      if (dh[t] == kUnreachableHops) {
        report.connected_ok = false;
        continue;
      }
      const std::uint64_t surplus = dh[t] - dg[t];
      report.max_surplus = std::max(report.max_surplus, surplus);
      sum += static_cast<double>(surplus);
    }
  }
  if (report.pairs_evaluated > 0) {
    report.mean_surplus = sum / static_cast<double>(report.pairs_evaluated);
  }
  return report;
}

std::uint32_t induced_diameter(const Graph& g,
                               const std::vector<Vertex>& members) {
  if (members.empty()) return 0;
  std::unordered_set<Vertex> member_set(members.begin(), members.end());
  std::uint32_t diameter = 0;
  for (const Vertex s : members) {
    // BFS restricted to member vertices.
    std::vector<std::uint32_t> dist(g.n(), kUnreachableHops);
    std::queue<Vertex> queue;
    dist[s] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop();
      for (const auto& nb : g.neighbors(v)) {
        if (!member_set.contains(nb.to)) continue;
        if (dist[nb.to] == kUnreachableHops) {
          dist[nb.to] = dist[v] + 1;
          queue.push(nb.to);
        }
      }
    }
    for (const Vertex t : members) {
      if (dist[t] == kUnreachableHops) return kUnreachableHops;
      diameter = std::max(diameter, dist[t]);
    }
  }
  return diameter;
}

}  // namespace kw
