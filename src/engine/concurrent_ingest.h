/// The persistent multi-threaded ingest driver behind StreamEngine's
/// shards > 1 path.
///
/// Architecture (GraphStreamingCC's guttering process_stream driver and
/// Grappa's aggregate-per-destination / flush-on-capacity idiom, in one
/// process):
///
///   front-end (caller thread)              N worker threads
///   ------------------------               ----------------------------
///   route each update to a shard           each worker owns clone_empty()
///   (shard_affinity: lo-endpoint,    -->   copies of every active
///   or a custom router), append to         processor and ingests flushed
///   that shard's fixed-capacity            batches through the ordinary
///   aggregation buffer; flush the          fused absorb() path
///   buffer into the worker's bounded
///   SPSC ring when it fills (or at
///   pass end)
///
/// The hot path takes no locks: routing is a pure function plus a local
/// vector append, and the handoff rings are lock-free (util/spsc_queue.h).
/// A full ring BLOCKS the front-end (bounded memory, never drops).  Pass
/// end flushes every remainder buffer, sends a pass-end marker down each
/// ring, waits for all workers to acknowledge it (the drain barrier), and
/// folds the worker clones into the primary processors in fixed worker
/// order.  Because every shardable stage is a LINEAR function of the update
/// vector, the merged state is bit-identical to sequential ingestion no
/// matter how updates were partitioned, how buffers were flushed, or how
/// the OS interleaved the workers -- which is what makes the whole driver
/// testable to exact equality (tests/test_concurrent_ingest.cc).
///
/// Workers are persistent: threads start at construction, serve every pass
/// (clones are re-taken per pass so multi-pass control state advances), and
/// exit when the driver is destroyed.  A worker exception is captured, the
/// worker keeps draining (so the front-end never blocks on a dead consumer
/// and the barrier always completes), and end_pass() rethrows it on the
/// caller thread.
#ifndef KW_ENGINE_CONCURRENT_INGEST_H
#define KW_ENGINE_CONCURRENT_INGEST_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "engine/stream_processor.h"
#include "stream/update.h"
#include "util/random.h"
#include "util/spsc_queue.h"

namespace kw {

struct ConcurrentIngestOptions {
  // Worker threads, each owning one clone_empty() shard per processor.
  std::size_t workers = 2;

  // Updates buffered per shard before the buffer is flushed to its worker.
  std::size_t flush_capacity = 16384;

  // Flushed batches that may sit in one worker's ring before the front-end
  // blocks on it (backpressure).
  std::size_t queue_depth = 4;

  // Routes an update to a worker in [0, workers).  Empty: the first active
  // processor's shard_affinity() (lo-endpoint by default).  Any router is
  // exact by linearity; tests use this to force adversarial partitions
  // (everything to one shard, round-robin, power-law).
  using Router = std::function<std::size_t(const EdgeUpdate&, std::size_t)>;
  Router router;

  // Nonzero: draw each buffer's flush threshold uniformly from
  // [1, flush_capacity] (seeded, deterministic) instead of always flushing
  // at capacity.  Randomizes flush ordering and batch boundaries -- a test
  // knob for proving neither affects the merged state.
  std::uint64_t flush_jitter_seed = 0;
};

struct ConcurrentIngestStats {
  std::size_t updates = 0;             // updates routed this pass
  std::size_t batches = 0;             // non-empty batches handed to workers
  std::size_t backpressure_waits = 0;  // front-end sleeps on a full ring
};

class ConcurrentIngestDriver {
 public:
  explicit ConcurrentIngestDriver(ConcurrentIngestOptions options);
  ~ConcurrentIngestDriver();

  ConcurrentIngestDriver(const ConcurrentIngestDriver&) = delete;
  ConcurrentIngestDriver& operator=(const ConcurrentIngestDriver&) = delete;

  // Starts a pass over `processors` (all must outlive the pass): takes one
  // clone_empty() per processor per worker.  Throws std::logic_error if any
  // processor cannot shard its current pass.
  void begin_pass(const std::vector<StreamProcessor*>& processors);

  // Routes a batch of updates into the per-shard aggregation buffers,
  // flushing any buffer that reaches its threshold.  Caller thread only.
  void push(std::span<const EdgeUpdate> updates);

  // True once any worker has failed this pass; the front-end may stop
  // feeding early (end_pass() still barriers and rethrows the exception).
  [[nodiscard]] bool failed() const noexcept {
    return any_error_.load(std::memory_order_relaxed);
  }

  // Flushes every remainder buffer, waits for all workers to drain (the
  // pass-end barrier), rethrows the first worker exception if any, then
  // merges each worker's clones into the primaries in worker order.  A
  // rethrow poisons the driver: the primaries missed the pass's updates,
  // so every later begin_pass() throws std::logic_error (see poisoned()).
  ConcurrentIngestStats end_pass();

  // True once a worker exception poisoned a pass; the driver (and the
  // partially-fed processors) must be rebuilt, not reused.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

  [[nodiscard]] std::size_t workers() const noexcept {
    return workers_.size();
  }

 private:
  struct Handoff {
    std::vector<EdgeUpdate> updates;
    bool pass_end = false;
  };

  struct Worker {
    explicit Worker(const ConcurrentIngestOptions& options)
        : inbox(options.queue_depth),
          recycled(options.queue_depth + 2) {}

    SpscQueue<Handoff> inbox;
    // Emptied batch vectors flow back to the front-end here, so the steady
    // state allocates nothing.
    SpscQueue<std::vector<EdgeUpdate>> recycled;

    // Written by the caller in begin_pass()/end_pass(), read by the worker
    // thread only between a ring pop (acquire) and the pass-done signal
    // (release) -- the ring orders the handoff.
    std::vector<std::unique_ptr<StreamProcessor>> shards;
    std::exception_ptr error;

    // Bumped once per completed pass; end_pass() waits on it.
    std::atomic<std::uint32_t> passes_done{0};

    // Front-end-only aggregation state.
    std::vector<EdgeUpdate> buffer;
    std::size_t flush_threshold = 0;

    std::thread thread;
  };

  void worker_loop(Worker& w);
  void flush(Worker& w, bool pass_end);
  [[nodiscard]] std::size_t next_threshold();

  ConcurrentIngestOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<StreamProcessor*> primaries_;  // current pass's merge targets
  ConcurrentIngestOptions::Router router_;   // resolved at begin_pass()
  Rng jitter_;
  bool in_pass_ = false;
  // Set when a worker exception poisoned a pass: the primaries missed that
  // pass's updates entirely, so further passes would silently diverge.
  // begin_pass() then throws std::logic_error.
  bool poisoned_ = false;
  std::uint32_t passes_begun_ = 0;
  ConcurrentIngestStats pass_stats_;
  std::atomic<bool> any_error_{false};
};

}  // namespace kw

#endif  // KW_ENGINE_CONCURRENT_INGEST_H
