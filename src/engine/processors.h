/// Engine adapters that are not algorithms themselves:
///
///  - MaterializeProcessor: one pass that accumulates net multiplicities
///    into a Graph.  Mergeable (multiplicity counting is linear), so even
///    "materialize then run offline" shards cleanly.
///  - OfflineBaselineProcessor: MaterializeProcessor + an arbitrary offline
///    Graph -> Graph algorithm at finish() -- how the non-streaming
///    baselines (greedy / Baswana-Sen spanners, SS sparsifier, Aingworth)
///    join an engine run for side-by-side comparisons without bespoke
///    driver code.
///  - DemuxProcessor: classifies each update once and routes it to one of
///    several lanes.  The engine-level form of Remark 14's weight-class
///    split (one lane per geometric class) and any other update-local
///    substream partition: all lanes ride the same physical passes.
#ifndef KW_ENGINE_PROCESSORS_H
#define KW_ENGINE_PROCESSORS_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "engine/stream_processor.h"
#include "graph/graph.h"

namespace kw {

class MaterializeProcessor : public StreamProcessor {
 public:
  explicit MaterializeProcessor(Vertex n) : n_(n) {}

  [[nodiscard]] std::size_t passes_required() const noexcept override {
    return 1;
  }
  [[nodiscard]] Vertex n() const noexcept override { return n_; }

  void absorb(std::span<const EdgeUpdate> batch) override;
  void advance_pass() override;
  void finish() override;

  [[nodiscard]] std::unique_ptr<StreamProcessor> clone_empty() const override;
  void merge(StreamProcessor&& other) override;

  // Valid after finish(): the graph of positive net multiplicities.
  [[nodiscard]] const Graph& graph() const;

 private:
  Vertex n_;
  bool finished_ = false;
  // pair -> (net multiplicity, weight).  The model fixes an edge's weight
  // across all its updates (update.h), so any observed weight is the weight
  // and merging shards cannot disagree.
  std::map<std::pair<Vertex, Vertex>, std::pair<std::int64_t, double>> net_;
  Graph graph_{0};
};

class OfflineBaselineProcessor final : public MaterializeProcessor {
 public:
  using Algorithm = std::function<Graph(const Graph&)>;

  OfflineBaselineProcessor(Vertex n, Algorithm algorithm)
      : MaterializeProcessor(n), algorithm_(std::move(algorithm)) {}

  void finish() override;

  [[nodiscard]] std::unique_ptr<StreamProcessor> clone_empty() const override;

  // Valid after finish(): the offline algorithm's output on graph().
  [[nodiscard]] const Graph& result() const;

 private:
  Algorithm algorithm_;
  bool ran_ = false;
  Graph result_{0};
};

// Ready-made baseline processors (declared here so engine users need not
// pull in the baseline headers themselves).
[[nodiscard]] std::unique_ptr<OfflineBaselineProcessor>
greedy_spanner_processor(Vertex n, unsigned k);
[[nodiscard]] std::unique_ptr<OfflineBaselineProcessor>
baswana_sen_processor(Vertex n, unsigned k, std::uint64_t seed);
[[nodiscard]] std::unique_ptr<OfflineBaselineProcessor>
aingworth_additive_processor(Vertex n, std::uint64_t seed);

class DemuxProcessor final : public StreamProcessor {
 public:
  // Lane index of an update; indices >= lanes.size() drop the update.
  using Selector = std::function<std::size_t(const EdgeUpdate&)>;

  // Non-owning: every lane must outlive this processor.  All lanes must
  // share n() and passes_required().
  DemuxProcessor(std::vector<StreamProcessor*> lanes, Selector selector);

  [[nodiscard]] std::size_t passes_required() const noexcept override {
    return lanes_.front()->passes_required();
  }
  [[nodiscard]] Vertex n() const noexcept override {
    return lanes_.front()->n();
  }

  void absorb(std::span<const EdgeUpdate> batch) override;
  void advance_pass() override;
  void finish() override;

  [[nodiscard]] std::unique_ptr<StreamProcessor> clone_empty() const override;
  void merge(StreamProcessor&& other) override;

  // Routing rides the lanes' preference: a demux is transparent to the
  // concurrent driver, so the lane processors' locality hint (lo-endpoint
  // for BankGroup-backed sketches) survives the indirection.
  [[nodiscard]] std::size_t shard_affinity(
      const EdgeUpdate& update, std::size_t shards) const noexcept override;

  // A demux is transparent to the engine's shared lane budget too: the pool
  // is forwarded to every lane (lanes finish one after another, so they
  // never contend for it).
  void use_worker_pool(std::shared_ptr<WorkerPool> pool,
                       std::size_t decode_lanes) override;

  // ---- serialization (src/serialize/processor_serialize.cc) ------------
  // A demux serializes as the ordered list of its lanes' payloads; every
  // lane must itself be serializable.  deserialize() restores lane state in
  // place (the lanes are not owned).
  [[nodiscard]] std::uint32_t serial_tag() const noexcept override;
  void serialize(ser::Writer& w) const override;
  void deserialize(ser::Reader& r) override;

  // Sums the lanes' decode-failure accounting (engine/health.h):
  // failures_per_round gets one entry per lane (that lane's total), and the
  // demux is degraded iff any lane is.
  [[nodiscard]] ProcessorHealth health() const override;

 private:
  DemuxProcessor(std::vector<std::unique_ptr<StreamProcessor>> owned,
                 Selector selector);

  std::vector<StreamProcessor*> lanes_;
  std::vector<std::unique_ptr<StreamProcessor>> owned_;  // set on clones only
  Selector selector_;
  std::vector<std::vector<EdgeUpdate>> buffers_;  // one per lane, reused
};

}  // namespace kw

#endif  // KW_ENGINE_PROCESSORS_H
