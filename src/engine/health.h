/// Decode-degradation accounting: the engine-level view of the paper's
/// failure probabilities.
///
/// Every sketch in this repo is probabilistic -- sparse recovery, L0
/// sampling, and the kv neighborhood tables all fail with probability
/// delta -- and the decoders already detect every failure ("we always know
/// if a SKETCH_B(x) can be decoded", Section 2).  Until now those
/// detections were scattered per-algorithm flags (ForestResult::complete,
/// TwoPassDiagnostics, Kp12Diagnostics::unhealthy_spanners).  HealthReport
/// aggregates them: after finish(), each processor reports its decode
/// failures bucketed by decoder family and by round/level, the engine
/// attaches the collection to EngineRunStats, and callers choose between
/// degraded-but-flagged results (default) and loud failure
/// (StreamEngineOptions::strict, which throws DecodeDegradedError).
#ifndef KW_ENGINE_HEALTH_H
#define KW_ENGINE_HEALTH_H

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace kw {

struct ProcessorHealth {
  // Identifies the processor in reports (serial tag name, or the engine
  // fills it from serial_tag() when the processor leaves it empty).
  std::string name;

  // Decode failures by decoder family, summed over the whole run.
  std::size_t sparse_recovery_failures = 0;  // SKETCH_B connector scans
  std::size_t l0_failures = 0;               // L0 / bank-stripe decodes
  std::size_t kv_failures = 0;               // kv tables + neighbor recovery

  // The same failures bucketed by the processor's natural unit of progress:
  // Boruvka round for forests, layer for k-connectivity, pass for spanners.
  std::vector<std::size_t> failures_per_round;

  // The processor's result was returned with reduced quality (incomplete
  // forest, unhealthy spanner instance, ...).  Counters can be nonzero with
  // degraded == false when redundancy absorbed every failure.
  bool degraded = false;

  [[nodiscard]] std::size_t total_failures() const noexcept {
    return sparse_recovery_failures + l0_failures + kv_failures;
  }
  [[nodiscard]] bool healthy() const noexcept {
    return !degraded && total_failures() == 0;
  }
};

struct HealthReport {
  std::vector<ProcessorHealth> processors;

  [[nodiscard]] bool healthy() const noexcept {
    for (const ProcessorHealth& p : processors) {
      if (!p.healthy()) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t total_failures() const noexcept {
    std::size_t total = 0;
    for (const ProcessorHealth& p : processors) total += p.total_failures();
    return total;
  }
  [[nodiscard]] bool degraded() const noexcept {
    for (const ProcessorHealth& p : processors) {
      if (p.degraded) return true;
    }
    return false;
  }

  // One line per unhealthy processor, for error messages and logs.
  [[nodiscard]] std::string summary() const {
    std::string out;
    for (const ProcessorHealth& p : processors) {
      if (p.healthy()) continue;
      if (!out.empty()) out += "; ";
      out += p.name + ": sparse=" +
             std::to_string(p.sparse_recovery_failures) +
             " l0=" + std::to_string(p.l0_failures) +
             " kv=" + std::to_string(p.kv_failures) +
             (p.degraded ? " (degraded result)" : "");
    }
    return out.empty() ? "healthy" : out;
  }
};

// Thrown by StreamEngine when options.strict is set and any processor
// finished degraded or with decode failures.  The processors' partial
// results remain takeable for post-mortems.
class DecodeDegradedError : public std::runtime_error {
 public:
  explicit DecodeDegradedError(const std::string& what)
      : std::runtime_error("decode degraded: " + what) {}
};

}  // namespace kw

#endif  // KW_ENGINE_HEALTH_H
