/// The push-based processor contract every sketch algorithm implements.
///
/// Historically each algorithm pulled from a fully materialized
/// DynamicStream via replay() plus ad-hoc per-class pass methods; nothing
/// could ingest from an unbuffered source, batch updates, or shard ingestion
/// across threads.  Because every sketch in the paper is a *linear* function
/// of the update vector (Section 2), all of them fit one uniform push
/// interface: a driver feeds batches of updates, announces pass boundaries,
/// and -- for the linear stages -- may split a pass across per-shard clones
/// that are folded back together by sketch addition.
///
/// Lifecycle, driven by kw::StreamEngine (engine/stream_engine.h):
///
///   absorb(batch)* -> [advance_pass -> absorb(batch)*]^(P-1) -> finish()
///
/// where P = passes_required().  After finish() the concrete type's result
/// accessor (take_result() by convention) yields the algorithm's output.
/// Processors must throw std::logic_error on out-of-phase calls so contract
/// violations surface immediately instead of as silent decode garbage.
#ifndef KW_ENGINE_STREAM_PROCESSOR_H
#define KW_ENGINE_STREAM_PROCESSOR_H

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>

#include "engine/health.h"
#include "graph/graph.h"
#include "serialize/serialize_fwd.h"
#include "stream/update.h"

namespace kw {

class WorkerPool;

class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;

  // Number of physical passes over the stream this processor consumes.
  [[nodiscard]] virtual std::size_t passes_required() const noexcept = 0;

  // Vertex-set size the processor was built for (drivers check it against
  // the source before feeding updates).
  [[nodiscard]] virtual Vertex n() const noexcept = 0;

  // Feed a batch of updates belonging to the current pass.  Batches within
  // one pass arrive in stream order under sequential ingestion; under
  // sharded ingestion each clone sees an arbitrary subsequence (legal for
  // linear stages only).
  virtual void absorb(std::span<const EdgeUpdate> batch) = 0;

  // Pass boundary: called once between consecutive passes (never after the
  // final pass).  Single-pass processors may throw.
  virtual void advance_pass() = 0;

  // End of the final pass: run post-processing and make the result
  // available.  Called exactly once.
  virtual void finish() = 0;

  // Decode-failure accounting, meaningful after finish(): how many sketch
  // decodes failed (by decoder family and by round/level) and whether the
  // result was degraded by them.  Survives take_result().  The default is
  // an empty, healthy report -- processors without probabilistic decoders
  // need not override.  The engine collects these into
  // EngineRunStats::health (see engine/health.h).
  [[nodiscard]] virtual ProcessorHealth health() const { return {}; }

  // ---- linear-stage support (sharded / distributed ingestion) ----------

  // A clone with identical configuration, randomness, and control state at
  // the current pass boundary, but all linear sketch state zero.  Returns
  // nullptr if the processor cannot shard its current pass; the engine
  // reports that as an error when asked for sharded ingestion.
  [[nodiscard]] virtual std::unique_ptr<StreamProcessor> clone_empty() const {
    return nullptr;
  }

  // Fold another processor's linear state into this one (this += other).
  // Only called with clones produced by this->clone_empty() that absorbed a
  // disjoint share of the same pass; exact by sketch linearity.
  virtual void merge(StreamProcessor&& other) {
    (void)other;
    throw std::logic_error(
        "StreamProcessor::merge: this processor is not mergeable");
  }

  // Shard-affinity hint: the worker shard the concurrent ingest driver
  // (engine/concurrent_ingest.h) should route `update` to when it partitions
  // a pass across `shards` worker-owned clones.  ANY assignment is exact --
  // linearity makes the merged result independent of the partition -- so
  // this is purely a locality hint.  The default routes by lo-endpoint:
  // the fused BankGroup ingest groups its scatter by the update's lo vertex,
  // so keeping all updates incident to one lo vertex on one worker keeps
  // each worker's vertex-grouped scatter inside a disjoint slice of its own
  // clone.  Must be a pure function of (update, shards), < shards.
  [[nodiscard]] virtual std::size_t shard_affinity(
      const EdgeUpdate& update, std::size_t shards) const noexcept {
    const Vertex lo = update.u < update.v ? update.u : update.v;
    return static_cast<std::size_t>(lo) % shards;
  }

  // ---- execution resources (engine-provided) ---------------------------

  // The engine hands every attached processor ONE shared WorkerPool before
  // feeding a run, so parallel phases (ingest scatter, decode at finish)
  // draw lanes from a single machine-wide budget instead of each processor
  // spinning a private thread set next to the shard workers.  decode_lanes
  // is the engine-level lane budget for finish()-time decode (resolved,
  // >= 1); processor-local knobs may override it, and per-phase lane caps
  // pick the budget out of the shared pool.  Lane counts are execution-only
  // -- a processor must produce bit-identical results at every count.  The
  // default ignores the pool (processors with no internal parallelism).
  virtual void use_worker_pool(std::shared_ptr<WorkerPool> pool,
                               std::size_t decode_lanes) {
    (void)pool;
    (void)decode_lanes;
  }

  // ---- serialization (src/serialize) -----------------------------------

  // Type tag of this processor's serialized payload (a ser:: fourcc), or 0
  // if the type does not support serialization.  ser::save/load dispatch on
  // it, and checkpoint files record it per attached processor.
  [[nodiscard]] virtual std::uint32_t serial_tag() const noexcept {
    return 0;
  }

  // Writes the processor's state (config/geometry validation header +
  // linear sketch state + control state) to `w`.  Only meaningful when
  // serial_tag() != 0.
  virtual void serialize(ser::Writer& w) const {
    (void)w;
    throw std::logic_error(
        "StreamProcessor::serialize: this processor type is not "
        "serializable");
  }

  // Restores state written by serialize() into this object, which must have
  // been constructed with the same configuration; throws ser::SerializeError
  // if the stored geometry or seeds disagree.
  virtual void deserialize(ser::Reader& r) {
    (void)r;
    throw std::logic_error(
        "StreamProcessor::deserialize: this processor type is not "
        "serializable");
  }

 protected:
  // Downcast helper for merge() implementations.
  template <class Derived>
  [[nodiscard]] static Derived& merge_cast(StreamProcessor& other) {
    auto* derived = dynamic_cast<Derived*>(&other);
    if (derived == nullptr) {
      throw std::invalid_argument(
          "StreamProcessor::merge: incompatible processor type");
    }
    return *derived;
  }
};

}  // namespace kw

#endif  // KW_ENGINE_STREAM_PROCESSOR_H
