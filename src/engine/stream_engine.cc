#include "engine/stream_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "serialize/serialize.h"
#include "util/fault_injection.h"
#include "util/worker_pool.h"

namespace kw {

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(std::move(options)) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("StreamEngine: batch_size must be >= 1");
  }
  if (options_.shards == 0) {
    throw std::invalid_argument("StreamEngine: shards must be >= 1");
  }
  if (options_.checkpoint_every_updates > 0 &&
      options_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "StreamEngine: checkpointing enabled without a checkpoint_path");
  }
}

StreamEngine& StreamEngine::attach(StreamProcessor& processor) {
  processors_.push_back(&processor);
  return *this;
}

std::size_t StreamEngine::validate_and_count_passes(
    const StreamSource& source) const {
  if (processors_.empty()) {
    throw std::logic_error("StreamEngine: no processors attached");
  }
  std::size_t total_passes = 0;
  for (const StreamProcessor* p : processors_) {
    if (p->passes_required() == 0) {
      throw std::logic_error(
          "StreamEngine: processor declares passes_required() == 0; every "
          "algorithm consumes at least one pass");
    }
    if (p->n() != source.n()) {
      throw std::logic_error(
          "StreamEngine: processor built for n=" + std::to_string(p->n()) +
          " but the source streams over n=" + std::to_string(source.n()));
    }
    total_passes = std::max(total_passes, p->passes_required());
  }
  return total_passes;
}

EngineRunStats StreamEngine::run(StreamSource& source) {
  return run_from(source, /*start_pass=*/0, /*skip_updates=*/0);
}

void StreamEngine::check_not_poisoned() const {
  if (poisoned_) {
    throw std::logic_error(
        "StreamEngine: a previous run on this engine failed mid-ingest, so "
        "the attached processors hold partial state that is not a prefix of "
        "any legal stream; rebuild the processors and the engine (or resume "
        "from a checkpoint into fresh processors) instead of reusing them");
  }
}

void StreamEngine::collect_health(EngineRunStats& stats) const {
  stats.health.processors.clear();
  stats.health.processors.reserve(processors_.size());
  for (const StreamProcessor* p : processors_) {
    ProcessorHealth h = p->health();
    if (h.name.empty()) {
      const std::uint32_t tag = p->serial_tag();
      h.name = tag == 0 ? "processor" : ser::tag_name(tag);
    }
    stats.health.processors.push_back(std::move(h));
  }
}

EngineRunStats StreamEngine::run_from(StreamSource& source,
                                      std::size_t start_pass,
                                      std::uint64_t skip_updates) {
  check_not_poisoned();
  const std::size_t total_passes = validate_and_count_passes(source);

  // One shared lane budget for the whole engine: every processor that
  // scatters or decodes in parallel draws from this pool through per-phase
  // lane caps, instead of spinning a private thread set next to the shard
  // workers.  A 1-lane pool (e.g. a single-threaded host) starts no threads
  // at all.
  const std::size_t decode_lanes =
      WorkerPool::resolve_lanes(options_.decode_workers);
  if (!pool_) pool_ = std::make_shared<WorkerPool>(decode_lanes);
  for (StreamProcessor* p : processors_) {
    p->use_worker_pool(pool_, decode_lanes);
  }

  // One persistent driver serves every sharded pass of the run: worker
  // threads outlive pass boundaries, only the per-pass clones are re-taken.
  std::unique_ptr<ConcurrentIngestDriver> driver;
  if (options_.shards > 1) {
    ConcurrentIngestOptions driver_options;
    driver_options.workers = options_.shards;
    driver_options.flush_capacity = options_.batch_size;
    driver_options.queue_depth = options_.shard_queue_depth;
    driver_options.router = options_.shard_router;
    driver_options.flush_jitter_seed = options_.shard_flush_jitter_seed;
    driver = std::make_unique<ConcurrentIngestDriver>(driver_options);
  }

  updates_since_checkpoint_ = 0;
  EngineRunStats stats;
  stats.shards = options_.shards;
  try {
    for (std::size_t pass = start_pass; pass < total_passes; ++pass) {
      std::vector<StreamProcessor*> active;
      for (StreamProcessor* p : processors_) {
        if (pass < p->passes_required()) active.push_back(p);
      }
      source.begin_pass();
      if (driver != nullptr) {
        run_pass_concurrent(source, active, *driver, stats);
      } else {
        run_pass_sequential(source, active, stats, pass,
                            pass == start_pass ? skip_updates : 0);
      }
      source.end_pass();
      ++stats.passes;
      for (StreamProcessor* p : active) {
        if (pass + 1 == p->passes_required()) {
          p->finish();
        } else {
          p->advance_pass();
        }
      }
      // Sharded ingest has no serializable cut while worker clones are in
      // flight, so its checkpoints land here, on the pass boundary after
      // the merge (offset 0 of the next pass).  Sequential ingest already
      // checkpoints mid-pass at the configured cadence.
      if (driver != nullptr && options_.checkpoint_every_updates > 0 &&
          pass + 1 < total_passes) {
        write_checkpoint(pass + 1, /*offset=*/0);
      }
    }
  } catch (...) {
    // The processors absorbed some prefix of a pass that will never be
    // completed; no later run over them can be correct.
    poisoned_ = true;
    throw;
  }
  collect_health(stats);
  if (options_.strict && !stats.health.healthy()) {
    throw DecodeDegradedError(stats.health.summary());
  }
  return stats;
}

EngineRunStats StreamEngine::run(const DynamicStream& stream) {
  ReplaySource source(stream);
  const std::size_t passes_before = stream.passes_used();
  EngineRunStats stats = run(source);
  const std::size_t charged = stream.passes_used() - passes_before;
  if (charged != stats.passes) {
    // Someone replayed the stream out-of-band mid-run (e.g. a processor
    // holding a stream reference) -- exactly the bespoke-pass-plumbing bug
    // class this engine retires.
    throw std::logic_error(
        "StreamEngine: pass-contract violation -- engine made " +
        std::to_string(stats.passes) + " physical passes but the stream was "
        "charged " + std::to_string(charged) +
        " (a processor replayed the stream outside the engine)");
  }
  return stats;
}

StreamEngine::CheckpointCut StreamEngine::load_checkpoint(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw ser::SerializeError("cannot open checkpoint file: " + path);
  }
  const std::vector<unsigned char> payload =
      ser::detail::read_envelope(is, ser::kTagCheckpoint);
  ser::Reader r(payload.data(), payload.size());
  const std::uint32_t n = r.u32();
  const std::uint64_t pass = r.u64();
  const std::uint64_t offset = r.u64();
  const std::uint64_t count = r.u64();
  if (count != processors_.size()) {
    throw ser::SerializeError(
        "checkpoint holds " + std::to_string(count) +
        " processors but the engine has " +
        std::to_string(processors_.size()) + " attached");
  }
  if (options_.shards > 1 && offset != 0) {
    throw ser::SerializeError(
        "checkpoint was taken mid-pass (offset " + std::to_string(offset) +
        ") by a sequential run; sharded resume can only restart from a pass "
        "boundary -- resume with shards == 1 or re-checkpoint at a pass "
        "boundary");
  }
  for (StreamProcessor* p : processors_) {
    if (p->n() != n) {
      throw ser::SerializeError(
          "checkpoint was taken over n=" + std::to_string(n) +
          " but a processor is built for n=" + std::to_string(p->n()));
    }
    const std::uint32_t tag = r.u32();
    if (tag != p->serial_tag()) {
      throw ser::SerializeError(
          "checkpoint processor type mismatch: file holds '" +
          ser::tag_name(tag) + "', attached processor is '" +
          ser::tag_name(p->serial_tag()) + "'");
    }
    const std::uint64_t len = r.u64();
    ser::Reader sub = r.sub(len);
    p->deserialize(sub);
    sub.expect_end();
  }
  r.expect_end();
  return {static_cast<std::size_t>(pass), offset};
}

EngineRunStats StreamEngine::resume(StreamSource& source,
                                    const std::string& checkpoint_path) {
  if (processors_.empty()) {
    throw std::logic_error("StreamEngine: no processors attached");
  }
  check_not_poisoned();
  CheckpointCut cut;
  try {
    cut = load_checkpoint(checkpoint_path);
  } catch (const ser::SerializeError& latest_error) {
    // A crash can strand a corrupt/truncated/missing latest checkpoint; the
    // rotation sibling is the previous good one.  Skip the fallback when it
    // does not exist so a plain "wrong file" error stays direct.
    const std::string prev = checkpoint_path + ".prev";
    if (!std::ifstream(prev, std::ios::binary)) throw;
    // deserialize() fully overwrites each processor's state, so a fallback
    // after a partially-applied first attempt is safe.
    try {
      cut = load_checkpoint(prev);
    } catch (const ser::SerializeError& prev_error) {
      throw ser::SerializeError(
          "latest checkpoint " + checkpoint_path + " is unusable (" +
          latest_error.what() + ") and the rotation fallback " + prev +
          " also failed (" + prev_error.what() + ")");
    }
  }
  return run_from(source, cut.pass, cut.offset);
}

EngineRunStats StreamEngine::resume(const DynamicStream& stream,
                                    const std::string& checkpoint_path) {
  ReplaySource source(stream);
  return resume(source, checkpoint_path);
}

namespace {

// Writes `bytes` to a fresh `path` and fsyncs it before returning: after
// this, the bytes survive a power cut even though the file is not yet
// linked under its final name.
void write_file_durable(const std::string& path, const std::string& bytes) {
  if (fault::fire(fault::site::kCheckpointWrite)) {
    throw ser::SerializeError(
        "injected transient checkpoint write failure (ENOSPC): " + path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw ser::SerializeError("cannot open checkpoint tmp file: " + path +
                              ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t got =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (got < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw ser::SerializeError("checkpoint write failed: " + path + ": " +
                                std::strerror(err));
    }
    written += static_cast<std::size_t>(got);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw ser::SerializeError("checkpoint fsync failed: " + path + ": " +
                              std::strerror(err));
  }
  ::close(fd);
}

// fsyncs the directory containing `path` so the renames themselves are
// durable.  Best-effort: some filesystems refuse directory fsync, and the
// file-level fsync already bounds the damage to "old checkpoint survives".
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, std::max<std::size_t>(
                                                            slash, 1));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void StreamEngine::write_checkpoint(std::size_t pass,
                                    std::uint64_t offset) const {
  ser::Writer w;
  w.begin_section("checkpoint.header");
  w.u32(processors_.front()->n());
  w.u64(pass);
  w.u64(offset);
  w.u64(processors_.size());
  w.end_section();
  for (const StreamProcessor* p : processors_) {
    const std::uint32_t tag = p->serial_tag();
    if (tag == 0) {
      throw ser::SerializeError(
          "checkpointing requires every attached processor to be "
          "serializable");
    }
    ser::Writer pw;
    p->serialize(pw);
    w.begin_section("checkpoint.processor");
    w.u32(tag);
    w.u64(pw.buffer().size());
    w.bytes(pw.buffer().data(), pw.buffer().size());
    w.end_section();
  }
  std::ostringstream envelope(std::ios::binary);
  ser::detail::write_envelope(envelope, ser::kTagCheckpoint, w.buffer(),
                              nullptr);
  const std::string bytes = std::move(envelope).str();

  // Durability protocol (every step is a crash point the recovery harness
  // kills at; resume() tolerates all of them):
  //   1. write + fsync the ".tmp" sibling (bounded retry on transient
  //      failure -- ENOSPC-style errors are often momentary)
  //   2. rotate the current checkpoint to ".prev" (keeps one good
  //      checkpoint on disk at every instant)
  //   3. rename ".tmp" into place (atomic publish)
  //   4. fsync the directory so the renames are durable
  const std::string& path = options_.checkpoint_path;
  const std::string tmp = path + ".tmp";
  const std::string prev = path + ".prev";
  constexpr int kWriteAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      write_file_durable(tmp, bytes);
      break;
    } catch (const ser::SerializeError&) {
      if (attempt >= kWriteAttempts) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
    }
  }
  if (fault::fire(fault::site::kCheckpointBeforeRename)) {
    throw ser::SerializeError(
        "injected failure between checkpoint write and rename");
  }
  if (::access(path.c_str(), F_OK) == 0) {
    if (std::rename(path.c_str(), prev.c_str()) != 0) {
      throw ser::SerializeError("checkpoint rotation failed: " + path +
                                " -> " + prev + ": " + std::strerror(errno));
    }
  }
  if (fault::fire(fault::site::kCheckpointMidRotate)) {
    throw ser::SerializeError(
        "injected failure between checkpoint rotation and publish");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw ser::SerializeError("checkpoint rename failed: " + tmp + " -> " +
                              path + ": " + std::strerror(errno));
  }
  if (fault::fire(fault::site::kCheckpointAfterRename)) {
    throw ser::SerializeError("injected failure after checkpoint publish");
  }
  fsync_parent_dir(path);
}

void StreamEngine::run_single(StreamProcessor& processor,
                              const DynamicStream& stream,
                              std::size_t batch_size) {
  StreamEngine engine(StreamEngineOptions{batch_size, /*shards=*/1});
  engine.attach(processor);
  (void)engine.run(stream);
}

namespace {

// One batch from the source, preferring the zero-copy view path and
// falling back to copying into `buffer`.  Empty result = pass exhausted.
[[nodiscard]] std::span<const EdgeUpdate> pull_batch(
    StreamSource& source, std::vector<EdgeUpdate>& buffer) {
  if (const auto view = source.next_view(buffer.size())) return *view;
  const std::size_t got = source.next_batch(buffer);
  return {buffer.data(), got};
}

}  // namespace

void StreamEngine::run_pass_sequential(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    EngineRunStats& stats, std::size_t pass_index,
    std::uint64_t skip_updates) {
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  const bool first_pass = pass_index == 0 && skip_updates == 0;
  // Updates absorbed during this pass so far, including a resumed prefix:
  // the offset recorded with each checkpoint.
  std::uint64_t absorbed_in_pass = skip_updates;
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    std::span<const EdgeUpdate> feed = batch;
    if (skip_updates > 0) {
      // Resume: drop the prefix the checkpointed run already absorbed.  A
      // partial batch remainder is fed as-is -- every attached sketch's
      // state is invariant to batch boundaries, so the final state matches
      // the uninterrupted run exactly.
      if (batch.size() <= skip_updates) {
        skip_updates -= batch.size();
        continue;
      }
      feed = batch.subspan(static_cast<std::size_t>(skip_updates));
      skip_updates = 0;
    }
    if (fault::fire(fault::site::kEngineAbsorbBatch)) {
      throw std::runtime_error("fault injected: engine.absorb_batch");
    }
    for (StreamProcessor* p : active) p->absorb(feed);
    ++stats.batches;
    absorbed_in_pass += feed.size();
    if (first_pass) stats.updates_per_pass += feed.size();
    if (options_.checkpoint_every_updates > 0) {
      updates_since_checkpoint_ += feed.size();
      if (updates_since_checkpoint_ >= options_.checkpoint_every_updates) {
        updates_since_checkpoint_ = 0;
        write_checkpoint(pass_index, absorbed_in_pass);
      }
    }
  }
}

void StreamEngine::run_pass_concurrent(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    ConcurrentIngestDriver& driver, EngineRunStats& stats) {
  // The front-end (this thread) is the only one touching the source, so no
  // source lock is needed at all: it pulls batches, routes each update to
  // its shard's aggregation buffer, and the driver hands full buffers to
  // the worker threads over the bounded rings.
  driver.begin_pass(active);
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    if (fault::fire(fault::site::kEngineAbsorbBatch)) {
      throw std::runtime_error("fault injected: engine.absorb_batch");
    }
    driver.push(batch);
    // A worker already failed: stop feeding, let end_pass() barrier and
    // rethrow instead of routing the remainder of the pass for nothing.
    if (driver.failed()) break;
  }
  const ConcurrentIngestStats pass = driver.end_pass();
  stats.batches += pass.batches;
  stats.backpressure_waits += pass.backpressure_waits;
  if (stats.passes == 0) stats.updates_per_pass = pass.updates;
}

}  // namespace kw
