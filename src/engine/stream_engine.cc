#include "engine/stream_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace kw {

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(options) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("StreamEngine: batch_size must be >= 1");
  }
  if (options_.shards == 0) {
    throw std::invalid_argument("StreamEngine: shards must be >= 1");
  }
}

StreamEngine& StreamEngine::attach(StreamProcessor& processor) {
  processors_.push_back(&processor);
  return *this;
}

EngineRunStats StreamEngine::run(StreamSource& source) {
  if (processors_.empty()) {
    throw std::logic_error("StreamEngine: no processors attached");
  }
  std::size_t total_passes = 0;
  for (const StreamProcessor* p : processors_) {
    if (p->passes_required() == 0) {
      throw std::logic_error(
          "StreamEngine: processor declares passes_required() == 0; every "
          "algorithm consumes at least one pass");
    }
    if (p->n() != source.n()) {
      throw std::logic_error(
          "StreamEngine: processor built for n=" + std::to_string(p->n()) +
          " but the source streams over n=" + std::to_string(source.n()));
    }
    total_passes = std::max(total_passes, p->passes_required());
  }

  // One persistent driver serves every sharded pass of the run: worker
  // threads outlive pass boundaries, only the per-pass clones are re-taken.
  std::unique_ptr<ConcurrentIngestDriver> driver;
  if (options_.shards > 1) {
    ConcurrentIngestOptions driver_options;
    driver_options.workers = options_.shards;
    driver_options.flush_capacity = options_.batch_size;
    driver_options.queue_depth = options_.shard_queue_depth;
    driver_options.router = options_.shard_router;
    driver_options.flush_jitter_seed = options_.shard_flush_jitter_seed;
    driver = std::make_unique<ConcurrentIngestDriver>(driver_options);
  }

  EngineRunStats stats;
  stats.shards = options_.shards;
  for (std::size_t pass = 0; pass < total_passes; ++pass) {
    std::vector<StreamProcessor*> active;
    for (StreamProcessor* p : processors_) {
      if (pass < p->passes_required()) active.push_back(p);
    }
    source.begin_pass();
    if (driver != nullptr) {
      run_pass_concurrent(source, active, *driver, stats);
    } else {
      run_pass_sequential(source, active, stats);
    }
    source.end_pass();
    ++stats.passes;
    for (StreamProcessor* p : active) {
      if (pass + 1 == p->passes_required()) {
        p->finish();
      } else {
        p->advance_pass();
      }
    }
  }
  return stats;
}

EngineRunStats StreamEngine::run(const DynamicStream& stream) {
  ReplaySource source(stream);
  const std::size_t passes_before = stream.passes_used();
  EngineRunStats stats = run(source);
  const std::size_t charged = stream.passes_used() - passes_before;
  if (charged != stats.passes) {
    // Someone replayed the stream out-of-band mid-run (e.g. a processor
    // holding a stream reference) -- exactly the bespoke-pass-plumbing bug
    // class this engine retires.
    throw std::logic_error(
        "StreamEngine: pass-contract violation -- engine made " +
        std::to_string(stats.passes) + " physical passes but the stream was "
        "charged " + std::to_string(charged) +
        " (a processor replayed the stream outside the engine)");
  }
  return stats;
}

void StreamEngine::run_single(StreamProcessor& processor,
                              const DynamicStream& stream,
                              std::size_t batch_size) {
  StreamEngine engine(StreamEngineOptions{batch_size, /*shards=*/1});
  engine.attach(processor);
  (void)engine.run(stream);
}

namespace {

// One batch from the source, preferring the zero-copy view path and
// falling back to copying into `buffer`.  Empty result = pass exhausted.
[[nodiscard]] std::span<const EdgeUpdate> pull_batch(
    StreamSource& source, std::vector<EdgeUpdate>& buffer) {
  if (const auto view = source.next_view(buffer.size())) return *view;
  const std::size_t got = source.next_batch(buffer);
  return {buffer.data(), got};
}

}  // namespace

void StreamEngine::run_pass_sequential(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    EngineRunStats& stats) {
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  const bool first_pass = stats.passes == 0;
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    for (StreamProcessor* p : active) p->absorb(batch);
    ++stats.batches;
    if (first_pass) stats.updates_per_pass += batch.size();
  }
}

void StreamEngine::run_pass_concurrent(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    ConcurrentIngestDriver& driver, EngineRunStats& stats) {
  // The front-end (this thread) is the only one touching the source, so no
  // source lock is needed at all: it pulls batches, routes each update to
  // its shard's aggregation buffer, and the driver hands full buffers to
  // the worker threads over the bounded rings.
  driver.begin_pass(active);
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    driver.push(batch);
    // A worker already failed: stop feeding, let end_pass() barrier and
    // rethrow instead of routing the remainder of the pass for nothing.
    if (driver.failed()) break;
  }
  const ConcurrentIngestStats pass = driver.end_pass();
  stats.batches += pass.batches;
  stats.backpressure_waits += pass.backpressure_waits;
  if (stats.passes == 0) stats.updates_per_pass = pass.updates;
}

}  // namespace kw
