#include "engine/stream_engine.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <typeinfo>
#include <utility>

namespace kw {

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(options) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("StreamEngine: batch_size must be >= 1");
  }
  if (options_.shards == 0) {
    throw std::invalid_argument("StreamEngine: shards must be >= 1");
  }
}

StreamEngine& StreamEngine::attach(StreamProcessor& processor) {
  processors_.push_back(&processor);
  return *this;
}

EngineRunStats StreamEngine::run(StreamSource& source) {
  if (processors_.empty()) {
    throw std::logic_error("StreamEngine: no processors attached");
  }
  std::size_t total_passes = 0;
  for (const StreamProcessor* p : processors_) {
    if (p->passes_required() == 0) {
      throw std::logic_error(
          "StreamEngine: processor declares passes_required() == 0; every "
          "algorithm consumes at least one pass");
    }
    if (p->n() != source.n()) {
      throw std::logic_error(
          "StreamEngine: processor built for n=" + std::to_string(p->n()) +
          " but the source streams over n=" + std::to_string(source.n()));
    }
    total_passes = std::max(total_passes, p->passes_required());
  }

  EngineRunStats stats;
  stats.shards = options_.shards;
  for (std::size_t pass = 0; pass < total_passes; ++pass) {
    std::vector<StreamProcessor*> active;
    for (StreamProcessor* p : processors_) {
      if (pass < p->passes_required()) active.push_back(p);
    }
    source.begin_pass();
    if (options_.shards > 1) {
      run_pass_sharded(source, active, stats);
    } else {
      run_pass_sequential(source, active, stats);
    }
    ++stats.passes;
    for (StreamProcessor* p : active) {
      if (pass + 1 == p->passes_required()) {
        p->finish();
      } else {
        p->advance_pass();
      }
    }
  }
  return stats;
}

EngineRunStats StreamEngine::run(const DynamicStream& stream) {
  ReplaySource source(stream);
  const std::size_t passes_before = stream.passes_used();
  EngineRunStats stats = run(source);
  const std::size_t charged = stream.passes_used() - passes_before;
  if (charged != stats.passes) {
    // Someone replayed the stream out-of-band mid-run (e.g. a processor
    // holding a stream reference) -- exactly the bespoke-pass-plumbing bug
    // class this engine retires.
    throw std::logic_error(
        "StreamEngine: pass-contract violation -- engine made " +
        std::to_string(stats.passes) + " physical passes but the stream was "
        "charged " + std::to_string(charged) +
        " (a processor replayed the stream outside the engine)");
  }
  return stats;
}

void StreamEngine::run_single(StreamProcessor& processor,
                              const DynamicStream& stream,
                              std::size_t batch_size) {
  StreamEngine engine(StreamEngineOptions{batch_size, /*shards=*/1});
  engine.attach(processor);
  (void)engine.run(stream);
}

namespace {

// One batch from the source, preferring the zero-copy view path and
// falling back to copying into `buffer`.  Empty result = pass exhausted.
[[nodiscard]] std::span<const EdgeUpdate> pull_batch(
    StreamSource& source, std::vector<EdgeUpdate>& buffer) {
  if (const auto view = source.next_view(buffer.size())) return *view;
  const std::size_t got = source.next_batch(buffer);
  return {buffer.data(), got};
}

}  // namespace

void StreamEngine::run_pass_sequential(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    EngineRunStats& stats) {
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  const bool first_pass = stats.passes == 0;
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    for (StreamProcessor* p : active) p->absorb(batch);
    ++stats.batches;
    if (first_pass) stats.updates_per_pass += batch.size();
  }
}

void StreamEngine::run_pass_sharded(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    EngineRunStats& stats) {
  const std::size_t shards = options_.shards;
  // Shard 0 ingests into the primary processors; shards 1..k-1 into empty
  // clones taken at this pass boundary, merged back below.
  std::vector<std::vector<std::unique_ptr<StreamProcessor>>> clones(
      shards - 1);
  for (std::size_t s = 0; s + 1 < shards; ++s) {
    clones[s].reserve(active.size());
    for (const StreamProcessor* p : active) {
      std::unique_ptr<StreamProcessor> clone = p->clone_empty();
      if (clone == nullptr) {
        throw std::logic_error(
            std::string("StreamEngine: sharded ingestion requested but "
                        "processor ") +
            typeid(*p).name() +
            " is not mergeable in its current pass (clone_empty() returned "
            "nullptr)");
      }
      clones[s].push_back(std::move(clone));
    }
  }

  std::mutex source_mutex;
  std::atomic<std::size_t> batches{0};
  std::atomic<std::size_t> updates{0};
  std::vector<std::exception_ptr> errors(shards);
  auto ingest = [&](std::size_t shard) {
    std::vector<StreamProcessor*> sinks;
    if (shard == 0) {
      sinks = active;
    } else {
      sinks.reserve(active.size());
      for (auto& c : clones[shard - 1]) sinks.push_back(c.get());
    }
    std::vector<EdgeUpdate> buffer(options_.batch_size);
    try {
      for (;;) {
        std::span<const EdgeUpdate> batch;
        {
          // Views returned under the lock stay valid for the whole pass
          // (StreamSource contract), so absorb() runs unlocked.
          const std::lock_guard<std::mutex> lock(source_mutex);
          batch = pull_batch(source, buffer);
        }
        if (batch.empty()) break;
        for (StreamProcessor* p : sinks) p->absorb(batch);
        batches.fetch_add(1, std::memory_order_relaxed);
        updates.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    } catch (...) {
      errors[shard] = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) threads.emplace_back(ingest, s);
  ingest(0);
  for (auto& t : threads) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  // Deterministic fold: shard order.  Linear state makes the result
  // independent of which updates each shard happened to grab.
  for (std::size_t s = 0; s + 1 < shards; ++s) {
    for (std::size_t i = 0; i < active.size(); ++i) {
      active[i]->merge(std::move(*clones[s][i]));
    }
  }

  stats.batches += batches.load();
  if (stats.passes == 0) stats.updates_per_pass = updates.load();
}

}  // namespace kw
