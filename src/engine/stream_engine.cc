#include "engine/stream_engine.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "serialize/serialize.h"

namespace kw {

StreamEngine::StreamEngine(StreamEngineOptions options)
    : options_(std::move(options)) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("StreamEngine: batch_size must be >= 1");
  }
  if (options_.shards == 0) {
    throw std::invalid_argument("StreamEngine: shards must be >= 1");
  }
  if (options_.checkpoint_every_updates > 0) {
    if (options_.checkpoint_path.empty()) {
      throw std::invalid_argument(
          "StreamEngine: checkpointing enabled without a checkpoint_path");
    }
    if (options_.shards > 1) {
      throw std::invalid_argument(
          "StreamEngine: checkpointing requires sequential ingest "
          "(shards == 1); a sharded run's in-flight worker state is not a "
          "serializable cut");
    }
  }
}

StreamEngine& StreamEngine::attach(StreamProcessor& processor) {
  processors_.push_back(&processor);
  return *this;
}

std::size_t StreamEngine::validate_and_count_passes(
    const StreamSource& source) const {
  if (processors_.empty()) {
    throw std::logic_error("StreamEngine: no processors attached");
  }
  std::size_t total_passes = 0;
  for (const StreamProcessor* p : processors_) {
    if (p->passes_required() == 0) {
      throw std::logic_error(
          "StreamEngine: processor declares passes_required() == 0; every "
          "algorithm consumes at least one pass");
    }
    if (p->n() != source.n()) {
      throw std::logic_error(
          "StreamEngine: processor built for n=" + std::to_string(p->n()) +
          " but the source streams over n=" + std::to_string(source.n()));
    }
    total_passes = std::max(total_passes, p->passes_required());
  }
  return total_passes;
}

EngineRunStats StreamEngine::run(StreamSource& source) {
  return run_from(source, /*start_pass=*/0, /*skip_updates=*/0);
}

EngineRunStats StreamEngine::run_from(StreamSource& source,
                                      std::size_t start_pass,
                                      std::uint64_t skip_updates) {
  const std::size_t total_passes = validate_and_count_passes(source);

  // One persistent driver serves every sharded pass of the run: worker
  // threads outlive pass boundaries, only the per-pass clones are re-taken.
  std::unique_ptr<ConcurrentIngestDriver> driver;
  if (options_.shards > 1) {
    ConcurrentIngestOptions driver_options;
    driver_options.workers = options_.shards;
    driver_options.flush_capacity = options_.batch_size;
    driver_options.queue_depth = options_.shard_queue_depth;
    driver_options.router = options_.shard_router;
    driver_options.flush_jitter_seed = options_.shard_flush_jitter_seed;
    driver = std::make_unique<ConcurrentIngestDriver>(driver_options);
  }

  updates_since_checkpoint_ = 0;
  EngineRunStats stats;
  stats.shards = options_.shards;
  for (std::size_t pass = start_pass; pass < total_passes; ++pass) {
    std::vector<StreamProcessor*> active;
    for (StreamProcessor* p : processors_) {
      if (pass < p->passes_required()) active.push_back(p);
    }
    source.begin_pass();
    if (driver != nullptr) {
      run_pass_concurrent(source, active, *driver, stats);
    } else {
      run_pass_sequential(source, active, stats, pass,
                          pass == start_pass ? skip_updates : 0);
    }
    source.end_pass();
    ++stats.passes;
    for (StreamProcessor* p : active) {
      if (pass + 1 == p->passes_required()) {
        p->finish();
      } else {
        p->advance_pass();
      }
    }
  }
  return stats;
}

EngineRunStats StreamEngine::run(const DynamicStream& stream) {
  ReplaySource source(stream);
  const std::size_t passes_before = stream.passes_used();
  EngineRunStats stats = run(source);
  const std::size_t charged = stream.passes_used() - passes_before;
  if (charged != stats.passes) {
    // Someone replayed the stream out-of-band mid-run (e.g. a processor
    // holding a stream reference) -- exactly the bespoke-pass-plumbing bug
    // class this engine retires.
    throw std::logic_error(
        "StreamEngine: pass-contract violation -- engine made " +
        std::to_string(stats.passes) + " physical passes but the stream was "
        "charged " + std::to_string(charged) +
        " (a processor replayed the stream outside the engine)");
  }
  return stats;
}

EngineRunStats StreamEngine::resume(StreamSource& source,
                                    const std::string& checkpoint_path) {
  if (processors_.empty()) {
    throw std::logic_error("StreamEngine: no processors attached");
  }
  if (options_.shards > 1) {
    throw std::logic_error("StreamEngine: resume requires shards == 1");
  }
  std::ifstream is(checkpoint_path, std::ios::binary);
  if (!is) {
    throw ser::SerializeError("cannot open checkpoint file: " +
                              checkpoint_path);
  }
  const std::vector<unsigned char> payload =
      ser::detail::read_envelope(is, ser::kTagCheckpoint);
  ser::Reader r(payload.data(), payload.size());
  const std::uint32_t n = r.u32();
  const std::uint64_t pass = r.u64();
  const std::uint64_t offset = r.u64();
  const std::uint64_t count = r.u64();
  if (count != processors_.size()) {
    throw ser::SerializeError(
        "checkpoint holds " + std::to_string(count) +
        " processors but the engine has " +
        std::to_string(processors_.size()) + " attached");
  }
  for (StreamProcessor* p : processors_) {
    if (p->n() != n) {
      throw ser::SerializeError(
          "checkpoint was taken over n=" + std::to_string(n) +
          " but a processor is built for n=" + std::to_string(p->n()));
    }
    const std::uint32_t tag = r.u32();
    if (tag != p->serial_tag()) {
      throw ser::SerializeError(
          "checkpoint processor type mismatch: file holds '" +
          ser::tag_name(tag) + "', attached processor is '" +
          ser::tag_name(p->serial_tag()) + "'");
    }
    const std::uint64_t len = r.u64();
    ser::Reader sub = r.sub(len);
    p->deserialize(sub);
    sub.expect_end();
  }
  r.expect_end();
  return run_from(source, static_cast<std::size_t>(pass), offset);
}

EngineRunStats StreamEngine::resume(const DynamicStream& stream,
                                    const std::string& checkpoint_path) {
  ReplaySource source(stream);
  return resume(source, checkpoint_path);
}

void StreamEngine::write_checkpoint(std::size_t pass,
                                    std::uint64_t offset) const {
  ser::Writer w;
  w.begin_section("checkpoint.header");
  w.u32(processors_.front()->n());
  w.u64(pass);
  w.u64(offset);
  w.u64(processors_.size());
  w.end_section();
  for (const StreamProcessor* p : processors_) {
    const std::uint32_t tag = p->serial_tag();
    if (tag == 0) {
      throw ser::SerializeError(
          "checkpointing requires every attached processor to be "
          "serializable");
    }
    ser::Writer pw;
    p->serialize(pw);
    w.begin_section("checkpoint.processor");
    w.u32(tag);
    w.u64(pw.buffer().size());
    w.bytes(pw.buffer().data(), pw.buffer().size());
    w.end_section();
  }
  // Atomic publish: a crash mid-write leaves the previous checkpoint (or
  // nothing) at checkpoint_path, never a torn file.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw ser::SerializeError("cannot open checkpoint tmp file: " + tmp);
    }
    ser::detail::write_envelope(os, ser::kTagCheckpoint, w.buffer(), nullptr);
    os.flush();
    if (!os) {
      throw ser::SerializeError("checkpoint write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) != 0) {
    throw ser::SerializeError("checkpoint rename failed: " + tmp + " -> " +
                              options_.checkpoint_path);
  }
}

void StreamEngine::run_single(StreamProcessor& processor,
                              const DynamicStream& stream,
                              std::size_t batch_size) {
  StreamEngine engine(StreamEngineOptions{batch_size, /*shards=*/1});
  engine.attach(processor);
  (void)engine.run(stream);
}

namespace {

// One batch from the source, preferring the zero-copy view path and
// falling back to copying into `buffer`.  Empty result = pass exhausted.
[[nodiscard]] std::span<const EdgeUpdate> pull_batch(
    StreamSource& source, std::vector<EdgeUpdate>& buffer) {
  if (const auto view = source.next_view(buffer.size())) return *view;
  const std::size_t got = source.next_batch(buffer);
  return {buffer.data(), got};
}

}  // namespace

void StreamEngine::run_pass_sequential(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    EngineRunStats& stats, std::size_t pass_index,
    std::uint64_t skip_updates) {
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  const bool first_pass = pass_index == 0 && skip_updates == 0;
  // Updates absorbed during this pass so far, including a resumed prefix:
  // the offset recorded with each checkpoint.
  std::uint64_t absorbed_in_pass = skip_updates;
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    std::span<const EdgeUpdate> feed = batch;
    if (skip_updates > 0) {
      // Resume: drop the prefix the checkpointed run already absorbed.  A
      // partial batch remainder is fed as-is -- every attached sketch's
      // state is invariant to batch boundaries, so the final state matches
      // the uninterrupted run exactly.
      if (batch.size() <= skip_updates) {
        skip_updates -= batch.size();
        continue;
      }
      feed = batch.subspan(static_cast<std::size_t>(skip_updates));
      skip_updates = 0;
    }
    for (StreamProcessor* p : active) p->absorb(feed);
    ++stats.batches;
    absorbed_in_pass += feed.size();
    if (first_pass) stats.updates_per_pass += feed.size();
    if (options_.checkpoint_every_updates > 0) {
      updates_since_checkpoint_ += feed.size();
      if (updates_since_checkpoint_ >= options_.checkpoint_every_updates) {
        updates_since_checkpoint_ = 0;
        write_checkpoint(pass_index, absorbed_in_pass);
      }
    }
  }
}

void StreamEngine::run_pass_concurrent(
    StreamSource& source, const std::vector<StreamProcessor*>& active,
    ConcurrentIngestDriver& driver, EngineRunStats& stats) {
  // The front-end (this thread) is the only one touching the source, so no
  // source lock is needed at all: it pulls batches, routes each update to
  // its shard's aggregation buffer, and the driver hands full buffers to
  // the worker threads over the bounded rings.
  driver.begin_pass(active);
  std::vector<EdgeUpdate> buffer(options_.batch_size);
  for (;;) {
    const std::span<const EdgeUpdate> batch = pull_batch(source, buffer);
    if (batch.empty()) break;
    driver.push(batch);
    // A worker already failed: stop feeding, let end_pass() barrier and
    // rethrow instead of routing the remainder of the pass for nothing.
    if (driver.failed()) break;
  }
  const ConcurrentIngestStats pass = driver.end_pass();
  stats.batches += pass.batches;
  stats.backpressure_waits += pass.backpressure_waits;
  if (stats.passes == 0) stats.updates_per_pass = pass.updates;
}

}  // namespace kw
