#include "engine/concurrent_ingest.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <utility>

#include "util/fault_injection.h"

namespace kw {

ConcurrentIngestDriver::ConcurrentIngestDriver(ConcurrentIngestOptions options)
    : options_(std::move(options)), jitter_(options_.flush_jitter_seed) {
  if (options_.workers == 0) {
    throw std::invalid_argument("ConcurrentIngestDriver: workers must be >= 1");
  }
  if (options_.flush_capacity == 0) {
    throw std::invalid_argument(
        "ConcurrentIngestDriver: flush_capacity must be >= 1");
  }
  if (options_.queue_depth == 0) {
    throw std::invalid_argument(
        "ConcurrentIngestDriver: queue_depth must be >= 1");
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(options_));
  }
  // Threads start only after the worker array is fully built: each thread
  // captures a stable Worker& (unique_ptr keeps the address fixed).
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
}

ConcurrentIngestDriver::~ConcurrentIngestDriver() {
  // Closing the rings drains whatever is still queued (workers discard the
  // leftovers of an abandoned pass) and terminates every worker loop.
  for (auto& worker : workers_) worker->inbox.close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ConcurrentIngestDriver::worker_loop(Worker& w) {
  Handoff handoff;
  while (w.inbox.pop(handoff)) {
    if (!handoff.updates.empty() && w.error == nullptr) {
      try {
        if (fault::fire(fault::site::kWorkerStall)) {
          // Stalled consumer: the front-end keeps routing into this
          // worker's ring and must absorb the backpressure, not drop.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (fault::fire(fault::site::kWorkerAbsorb)) {
          throw std::runtime_error(
              "fault injected: concurrent.worker.absorb");
        }
        for (auto& shard : w.shards) shard->absorb(handoff.updates);
      } catch (...) {
        // Keep consuming so the front-end never blocks on a full ring and
        // the pass-end barrier still completes; end_pass() rethrows.
        w.error = std::current_exception();
        any_error_.store(true, std::memory_order_relaxed);
      }
    }
    const bool pass_end = handoff.pass_end;
    handoff.updates.clear();
    // Hand the emptied vector back for reuse; if the freelist is full the
    // vector is simply dropped (allocation is off the common path only).
    (void)w.recycled.try_push(handoff.updates);
    handoff = Handoff{};
    if (pass_end) {
      w.passes_done.fetch_add(1, std::memory_order_release);
      w.passes_done.notify_one();
    }
  }
}

std::size_t ConcurrentIngestDriver::next_threshold() {
  if (options_.flush_jitter_seed == 0) return options_.flush_capacity;
  return 1 + static_cast<std::size_t>(
                 jitter_.next_below(options_.flush_capacity));
}

void ConcurrentIngestDriver::begin_pass(
    const std::vector<StreamProcessor*>& processors) {
  if (in_pass_) {
    throw std::logic_error(
        "ConcurrentIngestDriver: begin_pass() during an open pass");
  }
  if (poisoned_) {
    throw std::logic_error(
        "ConcurrentIngestDriver: a previous pass failed mid-ingest and its "
        "updates were lost; this driver's processors hold partial state -- "
        "rebuild the processors and the driver instead of reusing them");
  }
  if (processors.empty()) {
    throw std::logic_error(
        "ConcurrentIngestDriver: begin_pass() with no processors");
  }
  primaries_ = processors;
  if (options_.router) {
    router_ = options_.router;
  } else {
    // All attached processors ride one partition, so the first one's
    // affinity hint routes for everybody (any choice is exact; this one is
    // the locality-preferred one).
    router_ = [first = processors.front()](const EdgeUpdate& u,
                                           std::size_t shards) {
      return first->shard_affinity(u, shards);
    };
  }
  for (auto& worker : workers_) {
    worker->shards.clear();
    worker->error = nullptr;
    for (const StreamProcessor* p : primaries_) {
      std::unique_ptr<StreamProcessor> clone = p->clone_empty();
      if (clone == nullptr) {
        throw std::logic_error(
            std::string("StreamEngine: sharded ingestion requested but "
                        "processor ") +
            typeid(*p).name() +
            " is not mergeable in its current pass (clone_empty() returned "
            "nullptr)");
      }
      worker->shards.push_back(std::move(clone));
    }
    worker->buffer.clear();
    worker->buffer.reserve(options_.flush_capacity);
    worker->flush_threshold = next_threshold();
  }
  any_error_.store(false, std::memory_order_relaxed);
  pass_stats_ = ConcurrentIngestStats{};
  in_pass_ = true;
  ++passes_begun_;
}

void ConcurrentIngestDriver::flush(Worker& w, bool pass_end) {
  Handoff handoff;
  handoff.updates = std::move(w.buffer);
  handoff.pass_end = pass_end;
  if (!handoff.updates.empty()) ++pass_stats_.batches;
  pass_stats_.backpressure_waits += w.inbox.push(std::move(handoff));
  if (!w.recycled.try_pop(w.buffer)) w.buffer = std::vector<EdgeUpdate>{};
  w.buffer.clear();
  w.buffer.reserve(options_.flush_capacity);
  w.flush_threshold = next_threshold();
}

void ConcurrentIngestDriver::push(std::span<const EdgeUpdate> updates) {
  if (!in_pass_) {
    throw std::logic_error("ConcurrentIngestDriver: push() outside a pass");
  }
  const std::size_t shard_count = workers_.size();
  for (const EdgeUpdate& u : updates) {
    const std::size_t shard = router_(u, shard_count);
    if (shard >= shard_count) {
      throw std::out_of_range(
          "ConcurrentIngestDriver: router returned shard " +
          std::to_string(shard) + " but only " + std::to_string(shard_count) +
          " workers exist");
    }
    Worker& w = *workers_[shard];
    w.buffer.push_back(u);
    if (w.buffer.size() >= w.flush_threshold) flush(w, /*pass_end=*/false);
  }
  pass_stats_.updates += updates.size();
}

ConcurrentIngestStats ConcurrentIngestDriver::end_pass() {
  if (!in_pass_) {
    throw std::logic_error("ConcurrentIngestDriver: end_pass() outside a pass");
  }
  // Remainder flush + pass-end marker for every worker, then the drain
  // barrier: a worker bumps passes_done only after absorbing (or
  // discarding) everything up to and including the marker.
  for (auto& worker : workers_) flush(*worker, /*pass_end=*/true);
  for (auto& worker : workers_) {
    const std::uint32_t target = passes_begun_;
    std::uint32_t done;
    while ((done = worker->passes_done.load(std::memory_order_acquire)) !=
           target) {
      worker->passes_done.wait(done, std::memory_order_acquire);
    }
  }
  in_pass_ = false;

  for (auto& worker : workers_) {
    if (worker->error) {
      // Poisoned pass: drop the partial clones everywhere, then surface the
      // worker's exception on the caller thread.  The pass's updates are
      // now partially applied to nothing (the clones are gone) but the
      // PRIMARIES missed the whole pass -- their state is not a prefix of
      // any legal stream, so the driver refuses further passes instead of
      // merging garbage later (begin_pass throws std::logic_error).
      std::exception_ptr error = worker->error;
      for (auto& wr : workers_) wr->shards.clear();
      poisoned_ = true;
      std::rethrow_exception(error);
    }
  }

  // Deterministic fold, fixed worker order.  Linearity makes the result
  // independent of which updates each worker ingested and in what batches.
  for (auto& worker : workers_) {
    for (std::size_t i = 0; i < primaries_.size(); ++i) {
      primaries_[i]->merge(std::move(*worker->shards[i]));
    }
    worker->shards.clear();
  }
  return pass_stats_;
}

}  // namespace kw
