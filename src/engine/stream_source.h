/// Where the updates come from.  A StreamSource hands the engine batches of
/// EdgeUpdates and can rewind for another physical pass; it never exposes
/// random access, so processors cannot cheat the pass budget.
///
/// Two implementations ship here:
///  - ReplaySource: wraps a materialized DynamicStream (the classic
///    simulator path) and charges each begin_pass() to the stream's pass
///    counter, keeping the theorem-budget accounting the tests assert on.
///  - GeneratorSource: synthesizes the updates on the fly from a
///    deterministic generator and never materializes the stream -- the
///    unbuffered-ingestion path (a socket, a log tailer, a workload
///    generator) the engine exists to serve.
#ifndef KW_ENGINE_STREAM_SOURCE_H
#define KW_ENGINE_STREAM_SOURCE_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "stream/dynamic_stream.h"
#include "stream/update.h"

namespace kw {

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  [[nodiscard]] virtual Vertex n() const noexcept = 0;

  // Rewind to the start of the stream for a (new) physical pass.  Multi-pass
  // algorithms require the exact same update sequence every pass.
  virtual void begin_pass() = 0;

  // Fill `out` with up to out.size() updates in stream order; returns how
  // many were produced.  0 means the pass is exhausted.
  [[nodiscard]] virtual std::size_t next_batch(std::span<EdgeUpdate> out) = 0;

  // Optional zero-copy path: a view of up to max_len updates that stays
  // valid until the end of the pass.  std::nullopt means the source cannot
  // serve views (drivers fall back to next_batch); an empty span means the
  // pass is exhausted.
  [[nodiscard]] virtual std::optional<std::span<const EdgeUpdate>> next_view(
      std::size_t max_len) {
    (void)max_len;
    return std::nullopt;
  }

  // Pass-end hook: the engine calls this once per pass after the pass is
  // fully consumed AND -- under concurrent ingestion -- after the drain
  // barrier, i.e. once no worker thread will touch a view served this pass.
  // Only then may a source release or reuse per-pass resources (buffers
  // backing next_view(), a generator closure, a network window).  Default:
  // nothing to release.
  virtual void end_pass() {}
};

// A pass-counted view over a materialized DynamicStream.
class ReplaySource final : public StreamSource {
 public:
  explicit ReplaySource(const DynamicStream& stream) : stream_(&stream) {}

  [[nodiscard]] Vertex n() const noexcept override { return stream_->n(); }

  void begin_pass() override {
    stream_->note_pass();
    cursor_ = 0;
  }

  [[nodiscard]] std::size_t next_batch(std::span<EdgeUpdate> out) override {
    const auto& updates = stream_->updates();
    std::size_t produced = 0;
    while (produced < out.size() && cursor_ < updates.size()) {
      out[produced++] = updates[cursor_++];
    }
    return produced;
  }

  // The backing vector is immutable during a run, so batches are served as
  // views into it -- no per-pass copy of the stream.
  [[nodiscard]] std::optional<std::span<const EdgeUpdate>> next_view(
      std::size_t max_len) override {
    const auto& updates = stream_->updates();
    const std::size_t len = std::min(max_len, updates.size() - cursor_);
    const std::span<const EdgeUpdate> view(updates.data() + cursor_, len);
    cursor_ += len;
    return view;
  }

 private:
  const DynamicStream* stream_;
  std::size_t cursor_ = 0;
};

// Generates updates on demand; the stream is never held in memory.
//
// `make_pass` is invoked at every begin_pass() and must return a generator
// that yields the identical update sequence each time (seed the generator's
// randomness inside the factory) -- multi-pass algorithms see the stream
// more than once.
class GeneratorSource final : public StreamSource {
 public:
  using PassFn = std::function<std::optional<EdgeUpdate>()>;
  using Factory = std::function<PassFn()>;

  GeneratorSource(Vertex n, Factory make_pass)
      : n_(n), make_pass_(std::move(make_pass)) {}

  [[nodiscard]] Vertex n() const noexcept override { return n_; }

  void begin_pass() override { next_ = make_pass_(); }

  // The generator closure (and whatever state it captured for this pass) is
  // released as soon as the engine guarantees the pass is drained.
  void end_pass() override { next_ = nullptr; }

  [[nodiscard]] std::size_t next_batch(std::span<EdgeUpdate> out) override {
    std::size_t produced = 0;
    while (produced < out.size()) {
      std::optional<EdgeUpdate> u = next_();
      if (!u.has_value()) break;
      out[produced++] = *u;
    }
    return produced;
  }

 private:
  Vertex n_;
  Factory make_pass_;
  PassFn next_;
};

}  // namespace kw

#endif  // KW_ENGINE_STREAM_SOURCE_H
