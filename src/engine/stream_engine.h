/// The push-based driver: owns pass accounting, feeds configurable-size
/// batches from a StreamSource, fans one physical pass out to every attached
/// StreamProcessor (e.g. a spanner, a KP12 sparsifier, and an AGM forest all
/// riding the same two passes), and optionally shards ingestion across
/// threads (shards > 1) through a persistent ConcurrentIngestDriver:
/// per-shard aggregation buffers routed by lo-endpoint, bounded lock-free
/// handoff rings, worker-owned clone_empty() copies merged back by sketch
/// linearity at each pass end (Section 1's distributed setting, in-process;
/// see engine/concurrent_ingest.h).
///
/// Pass semantics: the engine makes max_i passes_required(i) physical
/// passes.  During pass p only processors with passes_required() > p receive
/// batches; at the end of pass p each of those either advances
/// (advance_pass) or, if p was its last pass, finishes (finish()).  This is
/// the single place the "exactly N passes" contract of each theorem is
/// enforced -- the per-algorithm run() conveniences all route through
/// run_single().
#ifndef KW_ENGINE_STREAM_ENGINE_H
#define KW_ENGINE_STREAM_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/concurrent_ingest.h"
#include "engine/health.h"
#include "engine/stream_processor.h"
#include "engine/stream_source.h"

namespace kw {

class WorkerPool;

struct StreamEngineOptions {
  StreamEngineOptions() = default;
  // The two knobs almost every caller sets; driver tuning keeps defaults.
  StreamEngineOptions(std::size_t batch_size_, std::size_t shards_)
      : batch_size(batch_size_), shards(shards_) {}

  // Updates per absorb() call.  Fused-sketch processors (BankGroup-backed)
  // amortize staging, hashing, churn cancellation and the vertex-grouped
  // scatter over the batch, so bigger is cheaper until the per-batch
  // scratch falls out of L2; 16k updates (~1 MB of scratch) is a good
  // default for every workload in this repo.  Under shards > 1 this is also
  // each shard's aggregation-buffer flush capacity.
  std::size_t batch_size = 16384;

  // >1: concurrent ingestion -- a persistent ConcurrentIngestDriver with
  // this many worker threads, each owning clone_empty() copies of every
  // active processor, merged back at each pass end (exact by linearity).
  std::size_t shards = 1;

  // ---- concurrent-driver tuning (ignored when shards == 1) -------------
  // Flushed batches in flight per worker before the front-end blocks.
  std::size_t shard_queue_depth = 4;
  // Custom update -> worker routing; empty = the processors' own
  // shard_affinity() hint (lo-endpoint).  Any router is exact.
  ConcurrentIngestOptions::Router shard_router;
  // Nonzero: seeded random per-buffer flush thresholds (test knob; see
  // ConcurrentIngestOptions::flush_jitter_seed).
  std::uint64_t shard_flush_jitter_seed = 0;

  // ---- shared execution resources --------------------------------------
  // Worker lanes for finish()-time decode parallelism inside processors
  // that support it (KP12 terminal-table decode, AGM Boruvka rounds);
  // 0 = one lane per hardware thread.  The engine builds ONE WorkerPool per
  // engine, sized to this, and hands it to every attached processor
  // (StreamProcessor::use_worker_pool) so ingest scatter and decode share a
  // single lane budget instead of each processor spinning private threads
  // next to the shard workers.  Execution-only: results are bit-identical
  // at every value.
  std::size_t decode_workers = 0;

  // ---- periodic checkpointing ------------------------------------------
  // 0 = off.  When set, every checkpoint_every_updates absorbed updates the
  // engine serializes every attached processor to checkpoint_path, together
  // with the current pass and the update offset inside it.  A killed run
  // restarts via resume(), which reloads the processors and replays only
  // the remainder of the stream -- exact because every attached sketch's
  // state is invariant to batch boundaries.
  //
  // Durability protocol (crash-consistent; tests/test_crash_recovery.cc
  // SIGKILLs between every step): the envelope is written to a ".tmp"
  // sibling and fsync'd; a transient write failure is retried with bounded
  // backoff; the previous checkpoint is rotated to checkpoint_path +
  // ".prev"; the temp file is renamed into place; the directory is fsync'd.
  // resume() prefers the latest file and falls back to ".prev" when the
  // latest is missing, truncated, or corrupt.
  //
  // Sequential ingest (shards == 1) checkpoints mid-pass at this cadence.
  // Sharded ingest has no serializable cut while worker clones are in
  // flight, so checkpoints land at PASS BOUNDARIES only (after the pass-end
  // merge) -- multi-pass sharded runs still resume without replaying
  // completed passes.  Every attached processor must be serializable
  // (serial_tag() != 0).
  std::size_t checkpoint_every_updates = 0;
  std::string checkpoint_path;

  // ---- decode-failure policy -------------------------------------------
  // false (default): decode failures degrade quality -- processors return
  // partial results, and the per-processor counters land in
  // EngineRunStats::health.  true: run()/resume() throw DecodeDegradedError
  // after finishing when any processor reports failures or a degraded
  // result (the loud behavior quality-regression tests want).
  bool strict = false;
};

struct EngineRunStats {
  std::size_t passes = 0;            // physical passes made
  std::size_t updates_per_pass = 0;  // updates fed during the first pass
  // Total absorb() batches (all passes).  Sequential: source batches.
  // Sharded: non-empty aggregation-buffer flushes handed to workers.
  std::size_t batches = 0;
  std::size_t shards = 1;
  // Times the sharded front-end slept on a full worker ring (0 when
  // shards == 1): backpressure blocks, it never drops.
  std::size_t backpressure_waits = 0;
  // Per-processor decode-failure accounting, collected after finish().
  // health.healthy() == true on a clean run.
  HealthReport health;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineOptions options = {});

  // Registers a processor (non-owning; must outlive run()).
  StreamEngine& attach(StreamProcessor& processor);

  // Drives all attached processors to completion.  Throws std::logic_error
  // with a descriptive message on any pass-contract violation (no
  // processors, vertex-set mismatch, unshardable processor under shards>1).
  EngineRunStats run(StreamSource& source);

  // Convenience over a materialized stream; additionally cross-checks the
  // stream's own pass counter against the engine's accounting.
  EngineRunStats run(const DynamicStream& stream);

  // Restarts a killed checkpointed run: loads the checkpoint written by a
  // previous run() with the same options and attached processors (same
  // types, same order, same configs), restores every processor's state, and
  // replays only the remainder of the stream -- from the stored pass,
  // skipping the stored number of already-absorbed updates.  The final
  // state is identical to the uninterrupted run.  When checkpoint_path is
  // missing, truncated, or corrupt, falls back to checkpoint_path + ".prev"
  // (the rotation sibling write_checkpoint maintains); throws
  // SerializeError only when both are unusable or mismatched.
  EngineRunStats resume(StreamSource& source,
                        const std::string& checkpoint_path);
  EngineRunStats resume(const DynamicStream& stream,
                        const std::string& checkpoint_path);

  // THE single implementation behind every algorithm's run(stream)
  // convenience: exactly processor.passes_required() pass-counted replays.
  static void run_single(StreamProcessor& processor,
                         const DynamicStream& stream,
                         std::size_t batch_size = 16384);

  // True once a run()/resume() escaped with an exception mid-ingest: the
  // attached processors hold partial state that is not a prefix of any
  // legal stream, so further run()/resume() calls throw std::logic_error
  // with that explanation instead of computing garbage.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  [[nodiscard]] std::size_t validate_and_count_passes(
      const StreamSource& source) const;
  EngineRunStats run_from(StreamSource& source, std::size_t start_pass,
                          std::uint64_t skip_updates);
  // Restores every processor from one checkpoint file and returns the
  // stream cut (pass, offset-within-pass) to resume from.
  struct CheckpointCut {
    std::size_t pass = 0;
    std::uint64_t offset = 0;
  };
  CheckpointCut load_checkpoint(const std::string& path);
  void write_checkpoint(std::size_t pass, std::uint64_t offset) const;
  void collect_health(EngineRunStats& stats) const;
  void check_not_poisoned() const;
  void run_pass_sequential(StreamSource& source,
                           const std::vector<StreamProcessor*>& active,
                           EngineRunStats& stats, std::size_t pass_index,
                           std::uint64_t skip_updates);
  void run_pass_concurrent(StreamSource& source,
                           const std::vector<StreamProcessor*>& active,
                           ConcurrentIngestDriver& driver,
                           EngineRunStats& stats);

  StreamEngineOptions options_;
  std::vector<StreamProcessor*> processors_;
  // The engine-wide lane budget (options_.decode_workers lanes), built on
  // the first run and handed to every attached processor; see
  // StreamProcessor::use_worker_pool.
  std::shared_ptr<WorkerPool> pool_;
  std::uint64_t updates_since_checkpoint_ = 0;
  bool poisoned_ = false;
};

}  // namespace kw

#endif  // KW_ENGINE_STREAM_ENGINE_H
