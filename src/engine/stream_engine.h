/// The push-based driver: owns pass accounting, feeds configurable-size
/// batches from a StreamSource, fans one physical pass out to every attached
/// StreamProcessor (e.g. a spanner, a KP12 sparsifier, and an AGM forest all
/// riding the same two passes), and optionally shards ingestion across
/// threads via per-shard clone_empty() copies merged back by sketch
/// linearity (Section 1's distributed setting, in-process).
///
/// Pass semantics: the engine makes max_i passes_required(i) physical
/// passes.  During pass p only processors with passes_required() > p receive
/// batches; at the end of pass p each of those either advances
/// (advance_pass) or, if p was its last pass, finishes (finish()).  This is
/// the single place the "exactly N passes" contract of each theorem is
/// enforced -- the per-algorithm run() conveniences all route through
/// run_single().
#ifndef KW_ENGINE_STREAM_ENGINE_H
#define KW_ENGINE_STREAM_ENGINE_H

#include <cstddef>
#include <vector>

#include "engine/stream_processor.h"
#include "engine/stream_source.h"

namespace kw {

struct StreamEngineOptions {
  // Updates per absorb() call.  Fused-sketch processors (BankGroup-backed)
  // amortize staging, hashing, churn cancellation and the vertex-grouped
  // scatter over the batch, so bigger is cheaper until the per-batch
  // scratch falls out of L2; 16k updates (~1 MB of scratch) is a good
  // default for every workload in this repo.
  std::size_t batch_size = 16384;
  std::size_t shards = 1;  // >1: threaded ingestion via clone/merge
};

struct EngineRunStats {
  std::size_t passes = 0;            // physical passes made
  std::size_t updates_per_pass = 0;  // updates fed during the first pass
  std::size_t batches = 0;           // total absorb batches (all passes)
  std::size_t shards = 1;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineOptions options = {});

  // Registers a processor (non-owning; must outlive run()).
  StreamEngine& attach(StreamProcessor& processor);

  // Drives all attached processors to completion.  Throws std::logic_error
  // with a descriptive message on any pass-contract violation (no
  // processors, vertex-set mismatch, unshardable processor under shards>1).
  EngineRunStats run(StreamSource& source);

  // Convenience over a materialized stream; additionally cross-checks the
  // stream's own pass counter against the engine's accounting.
  EngineRunStats run(const DynamicStream& stream);

  // THE single implementation behind every algorithm's run(stream)
  // convenience: exactly processor.passes_required() pass-counted replays.
  static void run_single(StreamProcessor& processor,
                         const DynamicStream& stream,
                         std::size_t batch_size = 16384);

 private:
  void run_pass_sequential(StreamSource& source,
                           const std::vector<StreamProcessor*>& active,
                           EngineRunStats& stats);
  void run_pass_sharded(StreamSource& source,
                        const std::vector<StreamProcessor*>& active,
                        EngineRunStats& stats);

  StreamEngineOptions options_;
  std::vector<StreamProcessor*> processors_;
};

}  // namespace kw

#endif  // KW_ENGINE_STREAM_ENGINE_H
