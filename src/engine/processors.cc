#include "engine/processors.h"

#include <stdexcept>

#include "baseline/aingworth_additive.h"
#include "baseline/baswana_sen.h"
#include "baseline/greedy_spanner.h"

namespace kw {

// ---- MaterializeProcessor -------------------------------------------------

void MaterializeProcessor::absorb(std::span<const EdgeUpdate> batch) {
  if (finished_) {
    throw std::logic_error("MaterializeProcessor: absorb() after finish()");
  }
  for (const EdgeUpdate& u : batch) {
    if (u.u == u.v) continue;
    const auto key = std::minmax(u.u, u.v);
    auto& entry = net_[{key.first, key.second}];
    entry.first += u.delta;
    entry.second = u.weight;
  }
}

void MaterializeProcessor::advance_pass() {
  throw std::logic_error(
      "MaterializeProcessor: single-pass, advance_pass() is never legal");
}

void MaterializeProcessor::finish() {
  if (finished_) {
    throw std::logic_error("MaterializeProcessor: finish() called twice");
  }
  finished_ = true;
  Graph g(n_);
  for (const auto& [pair, entry] : net_) {
    if (entry.first < 0) {
      throw std::logic_error(
          "MaterializeProcessor: stream yields negative edge multiplicity");
    }
    if (entry.first > 0) g.add_edge(pair.first, pair.second, entry.second);
  }
  net_.clear();
  graph_ = std::move(g);
}

std::unique_ptr<StreamProcessor> MaterializeProcessor::clone_empty() const {
  if (finished_) return nullptr;
  return std::make_unique<MaterializeProcessor>(n_);
}

void MaterializeProcessor::merge(StreamProcessor&& other) {
  auto& o = merge_cast<MaterializeProcessor>(other);
  if (o.n_ != n_) {
    throw std::invalid_argument("MaterializeProcessor::merge: n mismatch");
  }
  for (const auto& [pair, entry] : o.net_) {
    auto& mine = net_[pair];
    mine.first += entry.first;
    mine.second = entry.second;
  }
}

const Graph& MaterializeProcessor::graph() const {
  if (!finished_) {
    throw std::logic_error(
        "MaterializeProcessor: graph() unavailable before finish()");
  }
  return graph_;
}

// ---- OfflineBaselineProcessor ---------------------------------------------

void OfflineBaselineProcessor::finish() {
  MaterializeProcessor::finish();
  result_ = algorithm_(graph());
  ran_ = true;
}

std::unique_ptr<StreamProcessor> OfflineBaselineProcessor::clone_empty()
    const {
  if (ran_) return nullptr;
  // Shards only accumulate multiplicities; the offline algorithm runs once,
  // on the merged primary.
  return std::make_unique<MaterializeProcessor>(n());
}

const Graph& OfflineBaselineProcessor::result() const {
  if (!ran_) {
    throw std::logic_error(
        "OfflineBaselineProcessor: result() unavailable before finish()");
  }
  return result_;
}

std::unique_ptr<OfflineBaselineProcessor> greedy_spanner_processor(
    Vertex n, unsigned k) {
  return std::make_unique<OfflineBaselineProcessor>(
      n, [k](const Graph& g) { return greedy_spanner(g, k); });
}

std::unique_ptr<OfflineBaselineProcessor> baswana_sen_processor(
    Vertex n, unsigned k, std::uint64_t seed) {
  return std::make_unique<OfflineBaselineProcessor>(
      n, [k, seed](const Graph& g) { return baswana_sen_spanner(g, k, seed); });
}

std::unique_ptr<OfflineBaselineProcessor> aingworth_additive_processor(
    Vertex n, std::uint64_t seed) {
  return std::make_unique<OfflineBaselineProcessor>(
      n, [seed](const Graph& g) { return aingworth_additive_spanner(g, seed); });
}

// ---- DemuxProcessor -------------------------------------------------------

DemuxProcessor::DemuxProcessor(std::vector<StreamProcessor*> lanes,
                               Selector selector)
    : lanes_(std::move(lanes)),
      selector_(std::move(selector)),
      buffers_(lanes_.size()) {
  if (lanes_.empty()) {
    throw std::invalid_argument("DemuxProcessor: needs at least one lane");
  }
  for (const StreamProcessor* lane : lanes_) {
    if (lane->n() != lanes_.front()->n() ||
        lane->passes_required() != lanes_.front()->passes_required()) {
      throw std::invalid_argument(
          "DemuxProcessor: lanes must share n and passes_required");
    }
  }
}

DemuxProcessor::DemuxProcessor(
    std::vector<std::unique_ptr<StreamProcessor>> owned, Selector selector)
    : owned_(std::move(owned)),
      selector_(std::move(selector)),
      buffers_(owned_.size()) {
  lanes_.reserve(owned_.size());
  for (auto& lane : owned_) lanes_.push_back(lane.get());
}

void DemuxProcessor::absorb(std::span<const EdgeUpdate> batch) {
  if (lanes_.size() == 1) {
    // Single-lane demux (e.g. a weighted run whose weights all land in one
    // class): when no update is dropped (selector index >= lane count drops,
    // per the class contract), hand the batch through without the buffering
    // copy -- the lane's batched ingest sees the full span either way.
    std::size_t keep = 0;
    while (keep < batch.size() && selector_(batch[keep]) == 0) ++keep;
    if (keep == batch.size()) {
      lanes_.front()->absorb(batch);
      return;
    }
    // Some update routes off-lane: fall through to the exact buffered path.
  }
  for (auto& buffer : buffers_) buffer.clear();
  for (const EdgeUpdate& u : batch) {
    const std::size_t lane = selector_(u);
    if (lane < buffers_.size()) buffers_[lane].push_back(u);
  }
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    if (!buffers_[lane].empty()) lanes_[lane]->absorb(buffers_[lane]);
  }
}

void DemuxProcessor::advance_pass() {
  for (StreamProcessor* lane : lanes_) lane->advance_pass();
}

void DemuxProcessor::finish() {
  for (StreamProcessor* lane : lanes_) lane->finish();
}

ProcessorHealth DemuxProcessor::health() const {
  ProcessorHealth h;
  h.name = "Demux";
  for (const StreamProcessor* lane : lanes_) {
    const ProcessorHealth lane_health = lane->health();
    h.sparse_recovery_failures += lane_health.sparse_recovery_failures;
    h.l0_failures += lane_health.l0_failures;
    h.kv_failures += lane_health.kv_failures;
    h.failures_per_round.push_back(lane_health.total_failures());
    h.degraded = h.degraded || lane_health.degraded;
  }
  return h;
}

std::unique_ptr<StreamProcessor> DemuxProcessor::clone_empty() const {
  std::vector<std::unique_ptr<StreamProcessor>> clones;
  clones.reserve(lanes_.size());
  for (const StreamProcessor* lane : lanes_) {
    std::unique_ptr<StreamProcessor> clone = lane->clone_empty();
    if (clone == nullptr) return nullptr;
    clones.push_back(std::move(clone));
  }
  return std::unique_ptr<StreamProcessor>(
      new DemuxProcessor(std::move(clones), selector_));
}

std::size_t DemuxProcessor::shard_affinity(
    const EdgeUpdate& update, std::size_t shards) const noexcept {
  return lanes_.front()->shard_affinity(update, shards);
}

void DemuxProcessor::use_worker_pool(std::shared_ptr<WorkerPool> pool,
                                     std::size_t decode_lanes) {
  for (StreamProcessor* lane : lanes_) {
    lane->use_worker_pool(pool, decode_lanes);
  }
}

void DemuxProcessor::merge(StreamProcessor&& other) {
  auto& o = merge_cast<DemuxProcessor>(other);
  if (o.lanes_.size() != lanes_.size()) {
    throw std::invalid_argument("DemuxProcessor::merge: lane count mismatch");
  }
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    lanes_[lane]->merge(std::move(*o.lanes_[lane]));
  }
}

}  // namespace kw
