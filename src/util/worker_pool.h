/// A small persistent worker pool for page-disjoint fan-out.
///
/// The KP12 sparsifier's instance fleet partitions cleanly into disjoint
/// state islands (membership rows during ingest, whole instances during the
/// between-pass advance), so a task scatter needs no aggregation protocol at
/// all: every task writes only its own island, and the result is
/// bit-identical to the sequential loop REGARDLESS of how tasks land on
/// lanes.  That property is what lets run() hand out task indices through a
/// shared atomic counter (natural load balancing) without giving up the
/// determinism wall pinned in tests/test_kp12_fused.cc.
///
/// Structure follows the PR 6 concurrent-ingest driver: lanes - 1 persistent
/// threads, each blocking on a 1-deep SpscQueue inbox of job pointers (the
/// eventcount idiom in spsc_queue.h -- no spinning while idle); the caller
/// is lane 0 and works too, then waits on the job's completion counter.
/// Exceptions are captured once (first wins) and rethrown on the caller
/// after every task finished, so a failed task cannot leave a peer writing
/// into freed state.
///
/// A pool with lanes == 1 never starts a thread and run() is a plain loop --
/// the sequential path stays allocation- and synchronization-free.
#ifndef KW_UTIL_WORKER_POOL_H
#define KW_UTIL_WORKER_POOL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/spsc_queue.h"

namespace kw {

class WorkerPool {
 public:
  // lanes >= 1: the caller plus lanes - 1 pool threads.
  explicit WorkerPool(std::size_t lanes);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  // Runs fn(0..count-1), tasks claimed through a shared counter.  Blocks
  // until every claimed task returned; the first exception (if any) is
  // rethrown here.  Not reentrant: one run() at a time per pool, and fn must
  // only touch state disjoint from every other task's.
  //
  // lane_cap bounds how many lanes participate in THIS run (0 = all of
  // them); a shared pool can thus serve phases with different lane budgets
  // (ingest vs decode) without re-spawning threads.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           std::size_t lane_cap = 0);

  // Like run(), but fn also receives the dense lane index of the executing
  // lane (0 = caller, 1..wake = pool threads; always < the participant
  // count for this run).  Tasks may use it to address per-lane scratch
  // stripes -- writes stay disjoint because a lane only ever touches its
  // own stripe.
  void run_indexed(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t lane_cap = 0);

  // config knob -> lane count: 0 means "auto" (hardware_concurrency).
  [[nodiscard]] static std::size_t resolve_lanes(std::size_t requested);

 private:
  struct Job {
    // Exactly one of fn / indexed_fn is set per run.
    const std::function<void(std::size_t)>* fn = nullptr;
    const std::function<void(std::size_t, std::size_t)>* indexed_fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // written by the failed.exchange winner only
  };

  static void work(Job& job, std::size_t lane);
  void worker_loop(std::size_t lane);
  void run_job(Job& job, std::size_t lane_cap);

  std::size_t lanes_;
  std::vector<std::unique_ptr<SpscQueue<Job*>>> inboxes_;  // one per thread
  std::vector<std::thread> threads_;
};

}  // namespace kw

#endif  // KW_UTIL_WORKER_POOL_H
