// k-wise independent hash families over F_{2^61-1}.
//
// The paper's sketches require limited independence only (Theorem 8 uses
// O(1)-wise independence; the E_j subsamples need O(log n)-wise independence,
// Section 3.2).  We implement the classical polynomial construction: a random
// degree-(k-1) polynomial over F_p evaluated at the key is a k-wise
// independent function into [0, p).  Helpers map the field output to ranges,
// to [0,1) reals and to Bernoulli subsampling decisions at dyadic rates.
//
// Hot-path notes: coefficients live inline in the hash object (no heap
// indirection on evaluation), eval_many() amortizes the Horner recurrence
// over a batch of keys with instruction-level parallelism, and bucket() uses
// Lemire multiply-shift reduction instead of an integer division.
#ifndef KW_UTIL_HASHING_H
#define KW_UTIL_HASHING_H

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/prime_field.h"

namespace kw {

// A k-wise independent hash function h : uint64 -> [0, 2^61-1).
class KWiseHash {
 public:
  // Largest supported independence.  Every sketch in this library uses
  // k <= 8 (8-wise for the nested-level subsamples, 2/4-wise elsewhere);
  // keeping the coefficients inline bounds the object at one cache line
  // and removes the per-evaluation pointer chase of a heap vector.
  static constexpr std::size_t kMaxIndependence = 8;

  // Constructs a hash with `independence` coefficients (1 <= independence
  // <= kMaxIndependence) drawn deterministically from `seed`.
  KWiseHash(std::size_t independence, std::uint64_t seed);

  // Default: pairwise independence.
  explicit KWiseHash(std::uint64_t seed) : KWiseHash(2, seed) {}

  KWiseHash() : KWiseHash(2, 0) {}

  // Horner evaluation of the random polynomial at (key+1); the shift keeps
  // key 0 from being a fixed point of a zero constant term.
  [[nodiscard]] std::uint64_t operator()(std::uint64_t key) const noexcept {
    const std::uint64_t x = field_reduce(key + 1);
    std::uint64_t acc = coeffs_[size_ - 1];
    for (std::size_t i = size_ - 1; i-- > 0;) {
      acc = field_add(field_mul(acc, x), coeffs_[i]);
    }
    return acc;
  }

  // Batched Horner kernel: out[i] = (*this)(keys[i]).  Processes four keys
  // per round so the 128-bit multiply latency of one chain hides behind the
  // others; bit-identical to per-call evaluation.
  void eval_many(std::span<const std::uint64_t> keys,
                 std::span<std::uint64_t> out) const noexcept;

  // Hash into [0, range) by Lemire multiply-shift: floor(h * range / 2^61).
  // range must be nonzero and < 2^61-1.  One multiply instead of a division;
  // bias relative to uniform is O(range / 2^61), the same order as the
  // `% range` reduction it replaces.
  [[nodiscard]] std::uint64_t bucket(std::uint64_t key,
                                     std::uint64_t range) const noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>((*this)(key)) * range) >> 61);
  }

  // Hash mapped to [0,1).
  [[nodiscard]] double unit(std::uint64_t key) const noexcept {
    return static_cast<double>((*this)(key)) /
           static_cast<double>(kFieldPrime);
  }

  // True iff key survives subsampling at rate 2^{-level}; level 0 always
  // survives.  Every level compares the SAME hash value h = (*this)(key)
  // against the threshold p * 2^-level, so for a fixed key survival is
  // nested (monotone in level): survive(level+1) implies survive(level).
  // The L0 sampler's level construction relies on exactly this invariant --
  // one hash drives all of a key's levels, so the level-j survivor sets form
  // a decreasing chain.  k-wise independence holds across keys at each fixed
  // level, NOT across levels for one key (they are fully correlated by
  // design).
  [[nodiscard]] bool subsample(std::uint64_t key,
                               std::uint32_t level) const noexcept {
    // Compare against p / 2^level; level 0 always passes.
    const std::uint64_t threshold = kFieldPrime >> level;
    return (*this)(key) < threshold || level == 0;
  }

  // Deepest level this key's hash value survives (the largest j with
  // subsample(key, j) true, unbounded above only by the 61-bit hash width).
  // Computed once from h instead of a per-level loop-and-branch:
  // h < p >> j  <=>  bit_width(h+1) <= 61 - j.
  [[nodiscard]] static std::uint64_t deepest_level(std::uint64_t h) noexcept {
    // h < p guarantees bit_width(h+1) <= 61, so this cannot wrap.
    return 61 - static_cast<std::uint64_t>(std::bit_width(h + 1));
  }

  [[nodiscard]] std::size_t independence() const noexcept { return size_; }

  // The polynomial coefficients (constant term first).  A contiguous array
  // of KWiseHash objects is therefore a flat coefficient matrix -- the
  // shape eval_deepest_levels() streams.
  [[nodiscard]] std::span<const std::uint64_t> coefficients() const noexcept {
    return {coeffs_.data(), size_};
  }

 private:
  std::array<std::uint64_t, kMaxIndependence> coeffs_{};  // inline, no heap
  std::size_t size_ = 0;  // active coefficient count (the independence k)
};

// Shared power table for eval_deepest_levels: out[s * degree + (j-1)] =
// xs[s]^(j) over F_p for j = 1..degree, where xs[s] = field_reduce(key_s+1)
// is the pre-reduced evaluation point.  The table depends only on the keys,
// NOT on any hash's coefficients, so one build serves every hash function
// evaluated over the batch (all 48 group x instance hashes of a 12-round
// AGM sketch, for example).
void build_eval_powers(std::span<const std::uint64_t> xs, std::size_t degree,
                       std::uint64_t* out);

// Fused level sweep for a block of hash functions sharing one key stream:
// out[s * out_stride + h] = min(level_cap, deepest_level(hashes[h](key_s)))
// for every key and every hash (out_stride in bytes allows landing levels
// inside per-key record structs).  Evaluation uses the dot-product form
// c_0 + sum_j c_j * x^j over the shared `powers` table (degree entries per
// key, from build_eval_powers): the 128-bit products of one value are
// independent (no Horner chain) and accumulate exactly in 128 bits, with
// one canonical reduction per value -- bit-identical to per-call Horner
// evaluation, which the sketch-bank golden tests pin.  All hashes must
// share independence degree+1, and count must be <= out_stride.
void eval_deepest_levels(const KWiseHash* hashes, std::size_t count,
                         std::span<const std::uint64_t> powers,
                         std::size_t degree, std::size_t keys,
                         std::uint8_t level_cap, std::uint8_t* out,
                         std::size_t out_stride);

// A family of independent KWiseHash functions indexed by an integer, all
// derived from one master seed.  Convenience for "one hash per level".
// KWiseHash stores its coefficients inline, so the family is one contiguous
// block.
class HashFamily {
 public:
  HashFamily(std::size_t count, std::size_t independence, std::uint64_t seed);

  [[nodiscard]] const KWiseHash& operator[](std::size_t i) const {
    return hashes_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }

 private:
  std::vector<KWiseHash> hashes_;
};

// Combines two 32-ish-bit values into a single hashable 64-bit key.
[[nodiscard]] constexpr std::uint64_t pack_pair(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  return (a << 32) | (b & 0xffffffffULL);
}

}  // namespace kw

#endif  // KW_UTIL_HASHING_H
