// k-wise independent hash families over F_{2^61-1}.
//
// The paper's sketches require limited independence only (Theorem 8 uses
// O(1)-wise independence; the E_j subsamples need O(log n)-wise independence,
// Section 3.2).  We implement the classical polynomial construction: a random
// degree-(k-1) polynomial over F_p evaluated at the key is a k-wise
// independent function into [0, p).  Helpers map the field output to ranges,
// to [0,1) reals and to Bernoulli subsampling decisions at dyadic rates.
#ifndef KW_UTIL_HASHING_H
#define KW_UTIL_HASHING_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/prime_field.h"

namespace kw {

// A k-wise independent hash function h : uint64 -> [0, 2^61-1).
class KWiseHash {
 public:
  // Constructs a hash with `independence` coefficients (independence >= 1)
  // drawn deterministically from `seed`.
  KWiseHash(std::size_t independence, std::uint64_t seed);

  // Default: pairwise independence.
  explicit KWiseHash(std::uint64_t seed) : KWiseHash(2, seed) {}

  KWiseHash() : KWiseHash(2, 0) {}

  // Horner evaluation of the random polynomial at (key+1); the shift keeps
  // key 0 from being a fixed point of a zero constant term.
  [[nodiscard]] std::uint64_t operator()(std::uint64_t key) const noexcept;

  // Hash into [0, range).  range must be nonzero and < 2^61-1.
  [[nodiscard]] std::uint64_t bucket(std::uint64_t key,
                                     std::uint64_t range) const noexcept {
    return (*this)(key) % range;
  }

  // Hash mapped to [0,1).
  [[nodiscard]] double unit(std::uint64_t key) const noexcept {
    return static_cast<double>((*this)(key)) /
           static_cast<double>(kFieldPrime);
  }

  // True iff key survives subsampling at rate 2^{-level}.  Monotone in level
  // for a fixed key is NOT guaranteed (levels use the same hash value, so in
  // fact it IS monotone here: survive(level+1) implies survive(level)).
  [[nodiscard]] bool subsample(std::uint64_t key,
                               std::uint32_t level) const noexcept {
    // Compare against p / 2^level; level 0 always passes.
    const std::uint64_t threshold = kFieldPrime >> level;
    return (*this)(key) < threshold || level == 0;
  }

  [[nodiscard]] std::size_t independence() const noexcept {
    return coeffs_.size();
  }

 private:
  std::vector<std::uint64_t> coeffs_;  // degree-(k-1) polynomial coefficients
};

// A family of independent KWiseHash functions indexed by an integer, all
// derived from one master seed.  Convenience for "one hash per level".
class HashFamily {
 public:
  HashFamily(std::size_t count, std::size_t independence, std::uint64_t seed);

  [[nodiscard]] const KWiseHash& operator[](std::size_t i) const {
    return hashes_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }

 private:
  std::vector<KWiseHash> hashes_;
};

// Combines two 32-ish-bit values into a single hashable 64-bit key.
[[nodiscard]] constexpr std::uint64_t pack_pair(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  return (a << 32) | (b & 0xffffffffULL);
}

}  // namespace kw

#endif  // KW_UTIL_HASHING_H
