// Deterministic, seedable pseudo-random primitives.
//
// Everything in this library derives its randomness from a single 64-bit seed
// so that experiments are reproducible and so that the "random seed R" of the
// paper's algorithms (Claims 16/18/20 condition on R) is an explicit value.
//
// The paper assumes perfect randomness and then de-randomizes with Nisan's
// pseudorandom generator (Section 6.3).  We substitute seeded SplitMix64 /
// xoshiro256** streams: like Nisan's PRG, the stored state is O(1) words and
// the bits are indistinguishable from random for every statistical test the
// algorithms perform (see DESIGN.md, "Substitutions").
#ifndef KW_UTIL_RANDOM_H
#define KW_UTIL_RANDOM_H

#include <cstdint>
#include <limits>

namespace kw {

// SplitMix64: a fast 64-bit mixer.  Used both as a stream generator and as a
// stateless finalizer for deriving independent sub-seeds from a master seed.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Derives the i-th independent sub-seed from a master seed.  Different
// (seed, index) pairs give statistically independent streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t index) noexcept {
  return splitmix64(seed ^ splitmix64(index + 0x632be59bd9b4e019ULL));
}

// xoshiro256**: high-quality, tiny-state generator.  Satisfies the C++
// UniformRandomBitGenerator concept so it can drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8badf00dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Fill state via SplitMix64 as recommended by the xoshiro authors.
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm = splitmix64(sm);
      word = sm;
    }
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be nonzero.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bernoulli(double p) noexcept {
    return next_double() < p;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace kw

#endif  // KW_UTIL_RANDOM_H
