// Arithmetic in F_p for the Mersenne prime p = 2^61 - 1.
//
// Used by polynomial fingerprints (sketch/fingerprint.h) and by the k-wise
// independent hash families (util/hashing.h).  A Mersenne modulus makes
// reduction branch-light: x mod (2^61-1) = (x & p) + (x >> 61), folded once.
#ifndef KW_UTIL_PRIME_FIELD_H
#define KW_UTIL_PRIME_FIELD_H

#include <cstdint>

namespace kw {

inline constexpr std::uint64_t kFieldPrime = (1ULL << 61) - 1;

// Reduces a value < 2^64 into [0, p).
[[nodiscard]] constexpr std::uint64_t field_reduce(std::uint64_t x) noexcept {
  x = (x & kFieldPrime) + (x >> 61);
  if (x >= kFieldPrime) x -= kFieldPrime;
  return x;
}

// Reduces a 128-bit product into [0, p).
[[nodiscard]] constexpr std::uint64_t field_reduce128(__uint128_t x) noexcept {
  const auto lo = static_cast<std::uint64_t>(x & kFieldPrime);
  const auto hi = static_cast<std::uint64_t>(x >> 61);
  return field_reduce(lo + field_reduce(hi));
}

// Reduces any x < 2^125 (e.g. an exact sum of up to 2^64 canonical field
// elements, or of 8 full 122-bit products) into [0, p): splitting at bits
// 61 and 122 and folding once (2^61 == 1 mod p) leaves a value < 2^62,
// which one field_reduce canonicalizes.
[[nodiscard]] constexpr std::uint64_t field_reduce_wide(__uint128_t x) noexcept {
  const auto lo = static_cast<std::uint64_t>(x) & kFieldPrime;
  const auto mid = static_cast<std::uint64_t>(x >> 61) & kFieldPrime;
  const auto hi = static_cast<std::uint64_t>(x >> 122);
  return field_reduce(lo + mid + hi);
}

[[nodiscard]] constexpr std::uint64_t field_add(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  std::uint64_t s = a + b;  // a,b < 2^61 so no overflow
  if (s >= kFieldPrime) s -= kFieldPrime;
  return s;
}

[[nodiscard]] constexpr std::uint64_t field_sub(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  return a >= b ? a - b : a + kFieldPrime - b;
}

[[nodiscard]] constexpr std::uint64_t field_neg(std::uint64_t a) noexcept {
  return a == 0 ? 0 : kFieldPrime - a;
}

[[nodiscard]] constexpr std::uint64_t field_mul(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  return field_reduce128(static_cast<__uint128_t>(a) * b);
}

[[nodiscard]] constexpr std::uint64_t field_pow(std::uint64_t base,
                                                std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t b = field_reduce(base);
  while (exp != 0) {
    if (exp & 1) result = field_mul(result, b);
    b = field_mul(b, b);
    exp >>= 1;
  }
  return result;
}

// Multiplicative inverse via Fermat's little theorem; a must be nonzero mod p.
[[nodiscard]] constexpr std::uint64_t field_inv(std::uint64_t a) noexcept {
  return field_pow(a, kFieldPrime - 2);
}

// Maps a signed 64-bit integer into the field (negative values wrap mod p).
[[nodiscard]] constexpr std::uint64_t field_from_signed(
    std::int64_t v) noexcept {
  if (v >= 0) return field_reduce(static_cast<std::uint64_t>(v));
  return field_neg(field_reduce(static_cast<std::uint64_t>(-v)));
}

}  // namespace kw

#endif  // KW_UTIL_PRIME_FIELD_H
