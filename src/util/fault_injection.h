/// Deterministic, seeded fault injection for robustness tests.
///
/// Production code declares *named sites* at the places where the real world
/// can go wrong -- a short write, a torn rename, a worker thread dying
/// mid-pass -- and tests arm those sites with deterministic schedules:
///
///   fault::arm(fault::site::kCheckpointBeforeRename,
///              fault::Schedule::nth_hit(2),
///              [] { std::raise(SIGKILL); });   // crash-harness trigger
///
/// A site check is `fault::fire("name")`.  With nothing armed it compiles
/// down to one relaxed atomic load and a predictable branch -- no map
/// lookup, no lock, no allocation -- so sites are safe on ingest hot paths
/// (bench_serialize's fault-hooks row pins this at zero measured cost).
/// Once any site is armed, fire() takes a mutex-guarded slow path that
/// counts the hit, evaluates the site's schedule, runs the optional
/// on_trigger callback (which may never return: the crash harness raises
/// SIGKILL from it), and reports whether the caller should fail.
///
/// What "fail" means is the CALLER's contract, kept next to each site:
/// serialization sites produce short writes / injected ENOSPC / bit-flips,
/// engine sites throw, the concurrent driver's stall site sleeps.  The
/// subsystem itself only answers "does this hit trigger?".
///
/// Schedules are deterministic functions of (site hit counter, seed), so a
/// failing test replays exactly; hits are counted only while the site is
/// armed.  Arming is process-global and inherited across fork() -- exactly
/// what tests/test_crash_recovery.cc needs to kill a child at a chosen
/// point.
#ifndef KW_UTIL_FAULT_INJECTION_H
#define KW_UTIL_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace kw::fault {

struct Schedule {
  enum class Kind : std::uint8_t {
    kNth,          // trigger exactly on the nth evaluation (1-based)
    kProbability,  // trigger each evaluation independently w.p. p (seeded)
    kWindow,       // trigger on evaluations with 0-based index in [from, to)
  };

  Kind kind = Kind::kNth;
  std::uint64_t nth = 1;
  double probability = 0.0;
  std::uint64_t seed = 1;
  std::uint64_t from = 0;
  std::uint64_t to = ~0ULL;

  [[nodiscard]] static Schedule nth_hit(std::uint64_t n) {
    Schedule s;
    s.kind = Kind::kNth;
    s.nth = n;
    return s;
  }
  [[nodiscard]] static Schedule with_probability(double p,
                                                 std::uint64_t seed) {
    Schedule s;
    s.kind = Kind::kProbability;
    s.probability = p;
    s.seed = seed;
    return s;
  }
  [[nodiscard]] static Schedule window(std::uint64_t from, std::uint64_t to) {
    Schedule s;
    s.kind = Kind::kWindow;
    s.from = from;
    s.to = to;
    return s;
  }
  [[nodiscard]] static Schedule always() { return window(0, ~0ULL); }
};

// Arms `site`.  Re-arming an armed site replaces its schedule and resets
// its counters.  `on_trigger`, when set, runs on every triggering hit
// before fire() returns true (crash harnesses raise SIGKILL from it).
void arm(const std::string& site, Schedule schedule,
         std::function<void()> on_trigger = {});

// Disarming clears the site's schedule and counters; unknown sites are
// ignored.  disarm_all() returns the process to the zero-overhead state.
void disarm(const std::string& site);
void disarm_all();

// Evaluations / triggers since the site was (re-)armed; 0 if not armed.
[[nodiscard]] std::uint64_t hits(const std::string& site);
[[nodiscard]] std::uint64_t triggers(const std::string& site);

// RAII arming for tests: disarms the site on scope exit.
class ScopedArm {
 public:
  ScopedArm(std::string site, Schedule schedule,
            std::function<void()> on_trigger = {})
      : site_(std::move(site)) {
    arm(site_, schedule, std::move(on_trigger));
  }
  ~ScopedArm() { disarm(site_); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  std::string site_;
};

namespace detail {
// True iff at least one site is armed.  Relaxed reads are sufficient: a
// racing arm() only delays the first slow-path evaluation by one check, and
// tests arm before starting the threads they observe.
extern std::atomic<bool> g_enabled;
[[nodiscard]] bool fire_slow(const char* site);
}  // namespace detail

// The site check.  Disabled (the production state): one relaxed load, false.
[[nodiscard]] inline bool fire(const char* site) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) [[likely]] {
    return false;
  }
  return detail::fire_slow(site);
}

// ---- site catalog --------------------------------------------------------
// Every site threaded through production code, in one place so tests and
// docs/ARCHITECTURE.md cannot drift from the code.  Caller contract in
// comments; the string is the arm()/fire() key.
namespace site {

// serialize.cc write_envelope: emit a short (truncated) envelope, then fail
// the stream -> ser::save throws SerializeError.
inline constexpr char kSerializeWriteShort[] = "serialize.write.short";
// serialize.cc write_envelope: fail before writing anything (disk full).
inline constexpr char kSerializeWriteEnospc[] = "serialize.write.enospc";
// serialize.cc read_envelope: flip one payload bit after the read, before
// the CRC check -- which must therefore throw SerializeError.
inline constexpr char kSerializeReadBitflip[] = "serialize.read.bitflip";

// stream_engine.cc write_checkpoint: transient failure of one durable-write
// attempt (the bounded retry-with-backoff path absorbs it).
inline constexpr char kCheckpointWrite[] = "engine.checkpoint.write";
// stream_engine.cc write_checkpoint crash points, in publish order: after
// the temp file is durable but before any rename; between the
// current->prev rotation and the tmp->current publish; after publish.
// Armed with an on_trigger that SIGKILLs in the crash harness; if fire()
// returns (no crash), the caller throws SerializeError.
inline constexpr char kCheckpointBeforeRename[] =
    "engine.checkpoint.before_rename";
inline constexpr char kCheckpointMidRotate[] = "engine.checkpoint.mid_rotate";
inline constexpr char kCheckpointAfterRename[] =
    "engine.checkpoint.after_rename";

// stream_engine.cc: per-batch site on both ingest paths (sequential absorb
// loop and the concurrent front-end's push loop).  Trigger -> the engine
// throws; the crash harness instead SIGKILLs from on_trigger to die
// mid-pass.  This is also the hot-path site the serialize bench measures
// disabled.
inline constexpr char kEngineAbsorbBatch[] = "engine.absorb_batch";

// concurrent_ingest.cc worker_loop: throw from a worker mid-pass (the
// exception is captured and rethrown at end_pass()).
inline constexpr char kWorkerAbsorb[] = "concurrent.worker.absorb";
// concurrent_ingest.cc worker_loop: stall the consumer for a few ms before
// absorbing, forcing front-end backpressure on its full ring.
inline constexpr char kWorkerStall[] = "concurrent.worker.stall";

// worker_pool.cc: throw from a claimed pool task (e.g. a KP12 per-instance
// absorb/finish fan-out lane).
inline constexpr char kPoolTask[] = "worker_pool.task";

}  // namespace site

}  // namespace kw::fault

#endif  // KW_UTIL_FAULT_INJECTION_H
