#include "util/worker_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/fault_injection.h"

namespace kw {

WorkerPool::WorkerPool(std::size_t lanes) : lanes_(std::max<std::size_t>(1, lanes)) {
  const std::size_t extra = lanes_ - 1;
  inboxes_.reserve(extra);
  threads_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    inboxes_.push_back(std::make_unique<SpscQueue<Job*>>(1));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  for (auto& inbox : inboxes_) inbox->close();
  for (auto& t : threads_) t.join();
}

std::size_t WorkerPool::resolve_lanes(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void WorkerPool::work(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      if (fault::fire(fault::site::kPoolTask)) {
        throw std::runtime_error(
            "fault injected: worker_pool.task (task " + std::to_string(i) +
            ")");
      }
      (*job.fn)(i);
    } catch (...) {
      if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
        job.error = std::current_exception();
      }
    }
  }
  // `done` counts *lanes* that have drained, not tasks: a lane increments it
  // exactly once, after its last touch of the job, so the caller can safely
  // destroy the stack Job the moment done reaches the participant count.
  // The release pairs with the caller's acquire wait: every write a task
  // made is visible once all lanes have checked in.
  job.done.fetch_add(1, std::memory_order_release);
  job.done.notify_all();
}

void WorkerPool::worker_loop(std::size_t lane) {
  SpscQueue<Job*>& inbox = *inboxes_[lane];
  Job* job = nullptr;
  while (inbox.pop(job)) {
    work(*job);
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (lanes_ == 1 || count == 1) {
    // Sequential fast path: no job object, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) {
      if (fault::fire(fault::site::kPoolTask)) {
        throw std::runtime_error(
            "fault injected: worker_pool.task (task " + std::to_string(i) +
            ")");
      }
      fn(i);
    }
    return;
  }
  Job job;
  job.fn = &fn;
  job.count = count;
  // Wake only as many threads as there are tasks beyond the caller's lane.
  const std::size_t wake = std::min(inboxes_.size(), count - 1);
  for (std::size_t i = 0; i < wake; ++i) inboxes_[i]->push(&job);
  work(job);
  const std::size_t participants = wake + 1;  // pool lanes + this caller
  std::size_t seen = job.done.load(std::memory_order_acquire);
  while (seen != participants) {
    job.done.wait(seen, std::memory_order_acquire);
    seen = job.done.load(std::memory_order_acquire);
  }
  if (job.failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(job.error);
  }
}

}  // namespace kw
