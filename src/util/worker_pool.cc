#include "util/worker_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/fault_injection.h"

namespace kw {

WorkerPool::WorkerPool(std::size_t lanes) : lanes_(std::max<std::size_t>(1, lanes)) {
  const std::size_t extra = lanes_ - 1;
  inboxes_.reserve(extra);
  threads_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    inboxes_.push_back(std::make_unique<SpscQueue<Job*>>(1));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  for (auto& inbox : inboxes_) inbox->close();
  for (auto& t : threads_) t.join();
}

std::size_t WorkerPool::resolve_lanes(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void WorkerPool::work(Job& job, std::size_t lane) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      if (fault::fire(fault::site::kPoolTask)) {
        throw std::runtime_error(
            "fault injected: worker_pool.task (task " + std::to_string(i) +
            ")");
      }
      if (job.indexed_fn != nullptr) {
        (*job.indexed_fn)(i, lane);
      } else {
        (*job.fn)(i);
      }
    } catch (...) {
      if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
        job.error = std::current_exception();
      }
    }
  }
  // `done` counts *lanes* that have drained, not tasks: a lane increments it
  // exactly once, after its last touch of the job, so the caller can safely
  // destroy the stack Job the moment done reaches the participant count.
  // The release pairs with the caller's acquire wait: every write a task
  // made is visible once all lanes have checked in.
  job.done.fetch_add(1, std::memory_order_release);
  job.done.notify_all();
}

void WorkerPool::worker_loop(std::size_t lane) {
  SpscQueue<Job*>& inbox = *inboxes_[lane];
  Job* job = nullptr;
  while (inbox.pop(job)) {
    work(*job, lane + 1);  // lane 0 is the caller
  }
}

void WorkerPool::run_job(Job& job, std::size_t lane_cap) {
  // Wake only as many threads as there are tasks beyond the caller's lane,
  // and never more than this run's lane budget allows.
  std::size_t wake = std::min(inboxes_.size(), job.count - 1);
  if (lane_cap != 0) wake = std::min(wake, lane_cap - 1);
  for (std::size_t i = 0; i < wake; ++i) inboxes_[i]->push(&job);
  work(job, 0);
  const std::size_t participants = wake + 1;  // pool lanes + this caller
  std::size_t seen = job.done.load(std::memory_order_acquire);
  while (seen != participants) {
    job.done.wait(seen, std::memory_order_acquire);
    seen = job.done.load(std::memory_order_acquire);
  }
  if (job.failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(job.error);
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn,
                     std::size_t lane_cap) {
  if (count == 0) return;
  if (lanes_ == 1 || count == 1 || lane_cap == 1) {
    // Sequential fast path: no job object, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) {
      if (fault::fire(fault::site::kPoolTask)) {
        throw std::runtime_error(
            "fault injected: worker_pool.task (task " + std::to_string(i) +
            ")");
      }
      fn(i);
    }
    return;
  }
  Job job;
  job.fn = &fn;
  job.count = count;
  run_job(job, lane_cap);
}

void WorkerPool::run_indexed(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t lane_cap) {
  if (count == 0) return;
  if (lanes_ == 1 || count == 1 || lane_cap == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (fault::fire(fault::site::kPoolTask)) {
        throw std::runtime_error(
            "fault injected: worker_pool.task (task " + std::to_string(i) +
            ")");
      }
      fn(i, 0);
    }
    return;
  }
  Job job;
  job.indexed_fn = &fn;
  job.count = count;
  run_job(job, lane_cap);
}

}  // namespace kw
