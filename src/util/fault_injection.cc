#include "util/fault_injection.h"

#include <map>
#include <mutex>
#include <utility>

#include "util/random.h"

namespace kw::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Site {
  Schedule schedule;
  std::function<void()> on_trigger;
  std::uint64_t hits = 0;
  std::uint64_t triggers = 0;
};

// One mutex guards the whole registry.  Contention is irrelevant: the
// registry is only reachable while a test has a site armed; production runs
// never pass the g_enabled check in fire().
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Site>& registry() {
  static std::map<std::string, Site> sites;
  return sites;
}

[[nodiscard]] bool schedule_triggers(const Schedule& s, std::uint64_t hit) {
  switch (s.kind) {
    case Schedule::Kind::kNth:
      return hit == s.nth;  // hit is 1-based
    case Schedule::Kind::kProbability: {
      // Derive the decision from (seed, hit) alone so it is independent of
      // every other site and replayable from the counters.
      const std::uint64_t word = derive_seed(s.seed, hit);
      return static_cast<double>(word >> 11) * 0x1.0p-53 < s.probability;
    }
    case Schedule::Kind::kWindow:
      return hit - 1 >= s.from && hit - 1 < s.to;
  }
  return false;
}

}  // namespace

void arm(const std::string& site, Schedule schedule,
         std::function<void()> on_trigger) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Site& s = registry()[site];
  s.schedule = schedule;
  s.on_trigger = std::move(on_trigger);
  s.hits = 0;
  s.triggers = 0;
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().erase(site);
  if (registry().empty()) {
    detail::g_enabled.store(false, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

std::uint64_t triggers(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.triggers;
}

namespace detail {

bool fire_slow(const char* site) {
  std::function<void()> on_trigger;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(site);
    if (it == registry().end()) return false;
    Site& s = it->second;
    ++s.hits;
    if (!schedule_triggers(s.schedule, s.hits)) return false;
    ++s.triggers;
    on_trigger = s.on_trigger;  // run outside the lock: it may re-enter
  }
  if (on_trigger) on_trigger();
  return true;
}

}  // namespace detail

}  // namespace kw::fault
