#include "util/hashing.h"

#include "util/random.h"

namespace kw {

KWiseHash::KWiseHash(std::size_t independence, std::uint64_t seed) {
  if (independence == 0) independence = 1;
  coeffs_.resize(independence);
  for (std::size_t i = 0; i < independence; ++i) {
    // Rejection-free: field_reduce of a uniform 64-bit word is close enough
    // to uniform over F_p (bias 2^-61) for every use in this library.
    coeffs_[i] = field_reduce(derive_seed(seed, i));
  }
  // Leading coefficient nonzero keeps the polynomial's degree exact, which
  // the k-wise independence argument requires.
  if (coeffs_.size() > 1 && coeffs_.back() == 0) coeffs_.back() = 1;
}

std::uint64_t KWiseHash::operator()(std::uint64_t key) const noexcept {
  const std::uint64_t x = field_reduce(key + 1);
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = field_add(field_mul(acc, x), coeffs_[i]);
  }
  return acc;
}

HashFamily::HashFamily(std::size_t count, std::size_t independence,
                       std::uint64_t seed) {
  hashes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hashes_.emplace_back(independence, derive_seed(seed, 0x9000 + i));
  }
}

}  // namespace kw
