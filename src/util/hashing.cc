#include "util/hashing.h"

#include <algorithm>
#include <stdexcept>

#include "util/hot_dispatch.h"
#include "util/random.h"

namespace kw {

KWiseHash::KWiseHash(std::size_t independence, std::uint64_t seed) {
  if (independence == 0) independence = 1;
  if (independence > kMaxIndependence) {
    throw std::invalid_argument(
        "KWiseHash: independence exceeds kMaxIndependence (inline storage)");
  }
  size_ = independence;
  for (std::size_t i = 0; i < independence; ++i) {
    // Rejection-free: field_reduce of a uniform 64-bit word is close enough
    // to uniform over F_p (bias 2^-61) for every use in this library.
    coeffs_[i] = field_reduce(derive_seed(seed, i));
  }
  // Leading coefficient nonzero keeps the polynomial's degree exact, which
  // the k-wise independence argument requires.
  if (size_ > 1 && coeffs_[size_ - 1] == 0) coeffs_[size_ - 1] = 1;
}

void KWiseHash::eval_many(std::span<const std::uint64_t> keys,
                          std::span<std::uint64_t> out) const noexcept {
  const std::size_t k = size_;
  const std::uint64_t top = coeffs_[k - 1];
  std::size_t i = 0;
  // Four interleaved Horner chains: each step's 128-bit multiplies are
  // independent across lanes, so the CPU overlaps them instead of stalling
  // on one chain's multiply->reduce latency.
  for (; i + 4 <= keys.size(); i += 4) {
    const std::uint64_t x0 = field_reduce(keys[i + 0] + 1);
    const std::uint64_t x1 = field_reduce(keys[i + 1] + 1);
    const std::uint64_t x2 = field_reduce(keys[i + 2] + 1);
    const std::uint64_t x3 = field_reduce(keys[i + 3] + 1);
    std::uint64_t a0 = top;
    std::uint64_t a1 = top;
    std::uint64_t a2 = top;
    std::uint64_t a3 = top;
    for (std::size_t c = k - 1; c-- > 0;) {
      const std::uint64_t coeff = coeffs_[c];
      a0 = field_add(field_mul(a0, x0), coeff);
      a1 = field_add(field_mul(a1, x1), coeff);
      a2 = field_add(field_mul(a2, x2), coeff);
      a3 = field_add(field_mul(a3, x3), coeff);
    }
    out[i + 0] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < keys.size(); ++i) out[i] = (*this)(keys[i]);
}

namespace {

// A block of HB <= 4 hashes' dot products over one key's power row.  The
// per-product 128-bit multiplies are all independent (no Horner chain), so
// the multiplier pipeline stays full.  DEG > 0 fixes the polynomial degree
// at compile time (degree 7 -- 8-wise independence, every bank hash -- gets
// fully unrolled bodies); DEG == 0 reads it from the argument.
template <int HB, int DEG>
KW_TARGET_CLONES void eval_levels_block(const KWiseHash* hashes,
                                        std::size_t stride,
                                        const std::uint64_t* powers,
                                        std::size_t degree, std::size_t keys,
                                        std::uint8_t level_cap,
                                        std::uint8_t* out) {
  const std::size_t deg = DEG > 0 ? DEG : degree;
  const std::uint64_t* cf[HB];
  for (int b = 0; b < HB; ++b) cf[b] = hashes[b].coefficients().data();
  for (std::size_t s = 0; s < keys; ++s) {
    const std::uint64_t* xp = powers + s * deg;
    __uint128_t acc[HB];
    for (int b = 0; b < HB; ++b) acc[b] = cf[b][0];
    for (std::size_t j = 0; j < deg; ++j) {
      const std::uint64_t p = xp[j];
      for (int b = 0; b < HB; ++b) {
        acc[b] += static_cast<__uint128_t>(cf[b][j + 1]) * p;
      }
    }
    for (int b = 0; b < HB; ++b) {
      const std::uint64_t h = field_reduce_wide(acc[b]);
      const std::uint64_t deep = KWiseHash::deepest_level(h);
      out[s * stride + b] =
          deep < level_cap ? static_cast<std::uint8_t>(deep) : level_cap;
    }
  }
}

template <int HB>
void eval_levels_block_dispatch(const KWiseHash* hashes, std::size_t stride,
                                const std::uint64_t* powers,
                                std::size_t degree, std::size_t keys,
                                std::uint8_t level_cap, std::uint8_t* out) {
  if (degree == 7) {
    eval_levels_block<HB, 7>(hashes, stride, powers, degree, keys, level_cap,
                             out);
  } else {
    eval_levels_block<HB, 0>(hashes, stride, powers, degree, keys, level_cap,
                             out);
  }
}

}  // namespace

KW_TARGET_CLONES void build_eval_powers(std::span<const std::uint64_t> xs,
                                        std::size_t degree,
                                        std::uint64_t* out) {
  for (std::size_t s = 0; s < xs.size(); ++s) {
    const std::uint64_t x = xs[s];
    std::uint64_t* row = out + s * degree;
    std::uint64_t acc = x;
    for (std::size_t j = 0; j < degree; ++j) {
      row[j] = acc;
      acc = field_mul(acc, x);
    }
  }
}

void eval_deepest_levels(const KWiseHash* hashes, std::size_t count,
                         std::span<const std::uint64_t> powers,
                         std::size_t degree, std::size_t keys,
                         std::uint8_t level_cap, std::uint8_t* out,
                         std::size_t out_stride) {
  if (powers.size() < keys * degree) {
    throw std::invalid_argument("eval_deepest_levels: power table too small");
  }
  if (count > out_stride) {
    throw std::invalid_argument("eval_deepest_levels: stride < hash count");
  }
  for (std::size_t h = 0; h < count; ++h) {
    if (hashes[h].independence() != degree + 1) {
      throw std::invalid_argument(
          "eval_deepest_levels: hash independence != degree + 1");
    }
  }
  for (std::size_t h0 = 0; h0 < count; h0 += 4) {
    const std::size_t hb = std::min<std::size_t>(4, count - h0);
    std::uint8_t* block_out = out + h0;
    switch (hb) {
      case 1:
        eval_levels_block_dispatch<1>(hashes + h0, out_stride, powers.data(), degree,
                             keys, level_cap, block_out);
        break;
      case 2:
        eval_levels_block_dispatch<2>(hashes + h0, out_stride, powers.data(), degree,
                             keys, level_cap, block_out);
        break;
      case 3:
        eval_levels_block_dispatch<3>(hashes + h0, out_stride, powers.data(), degree,
                             keys, level_cap, block_out);
        break;
      default:
        eval_levels_block_dispatch<4>(hashes + h0, out_stride, powers.data(), degree,
                             keys, level_cap, block_out);
        break;
    }
  }
}

HashFamily::HashFamily(std::size_t count, std::size_t independence,
                       std::uint64_t seed) {
  hashes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hashes_.emplace_back(independence, derive_seed(seed, 0x9000 + i));
  }
}

}  // namespace kw
