#include "util/hashing.h"

#include <stdexcept>

#include "util/random.h"

namespace kw {

KWiseHash::KWiseHash(std::size_t independence, std::uint64_t seed) {
  if (independence == 0) independence = 1;
  if (independence > kMaxIndependence) {
    throw std::invalid_argument(
        "KWiseHash: independence exceeds kMaxIndependence (inline storage)");
  }
  size_ = independence;
  for (std::size_t i = 0; i < independence; ++i) {
    // Rejection-free: field_reduce of a uniform 64-bit word is close enough
    // to uniform over F_p (bias 2^-61) for every use in this library.
    coeffs_[i] = field_reduce(derive_seed(seed, i));
  }
  // Leading coefficient nonzero keeps the polynomial's degree exact, which
  // the k-wise independence argument requires.
  if (size_ > 1 && coeffs_[size_ - 1] == 0) coeffs_[size_ - 1] = 1;
}

void KWiseHash::eval_many(std::span<const std::uint64_t> keys,
                          std::span<std::uint64_t> out) const noexcept {
  const std::size_t k = size_;
  const std::uint64_t top = coeffs_[k - 1];
  std::size_t i = 0;
  // Four interleaved Horner chains: each step's 128-bit multiplies are
  // independent across lanes, so the CPU overlaps them instead of stalling
  // on one chain's multiply->reduce latency.
  for (; i + 4 <= keys.size(); i += 4) {
    const std::uint64_t x0 = field_reduce(keys[i + 0] + 1);
    const std::uint64_t x1 = field_reduce(keys[i + 1] + 1);
    const std::uint64_t x2 = field_reduce(keys[i + 2] + 1);
    const std::uint64_t x3 = field_reduce(keys[i + 3] + 1);
    std::uint64_t a0 = top;
    std::uint64_t a1 = top;
    std::uint64_t a2 = top;
    std::uint64_t a3 = top;
    for (std::size_t c = k - 1; c-- > 0;) {
      const std::uint64_t coeff = coeffs_[c];
      a0 = field_add(field_mul(a0, x0), coeff);
      a1 = field_add(field_mul(a1, x1), coeff);
      a2 = field_add(field_mul(a2, x2), coeff);
      a3 = field_add(field_mul(a3, x3), coeff);
    }
    out[i + 0] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < keys.size(); ++i) out[i] = (*this)(keys[i]);
}

HashFamily::HashFamily(std::size_t count, std::size_t independence,
                       std::uint64_t seed) {
  hashes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hashes_.emplace_back(independence, derive_seed(seed, 0x9000 + i));
  }
}

}  // namespace kw
