#include "util/random.h"

namespace kw {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  const std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace kw
