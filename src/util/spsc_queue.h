/// Bounded single-producer / single-consumer handoff ring.
///
/// The concurrent ingest driver (engine/concurrent_ingest.h) moves flushed
/// aggregation batches from the routing front-end to each worker through one
/// of these: the front-end is the only pusher, the worker the only popper,
/// so a ring with two atomic indices suffices -- no locks anywhere, not even
/// on the blocking paths.
///
/// Blocking uses the eventcount idiom over C++20 atomic wait/notify: each
/// side bumps its epoch counter AFTER publishing an index change, and a
/// would-be waiter re-checks the ring AFTER capturing the epoch it will wait
/// on, so a wakeup can never be missed.  A full ring therefore BLOCKS the
/// producer (bounded memory, backpressure) -- it never drops.
///
/// close() is the producer's end-of-stream: pop() drains whatever is
/// buffered, then returns false forever.
#ifndef KW_UTIL_SPSC_QUEUE_H
#define KW_UTIL_SPSC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace kw {

template <class T>
class SpscQueue {
 public:
  // `capacity` items may be buffered before push() blocks.
  explicit SpscQueue(std::size_t capacity) : slots_(capacity + 1) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscQueue: capacity must be >= 1");
    }
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer only.  Blocks while the ring is full; returns how many times it
  // had to sleep (the driver surfaces this as a backpressure statistic).
  std::size_t push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next_tail = next(tail);
    std::size_t waits = 0;
    while (next_tail == head_.load(std::memory_order_acquire)) {
      const std::uint32_t seen = pop_epoch_.load(std::memory_order_acquire);
      if (next_tail != head_.load(std::memory_order_acquire)) break;
      ++waits;
      pop_epoch_.wait(seen, std::memory_order_acquire);
    }
    slots_[tail] = std::move(value);
    tail_.store(next_tail, std::memory_order_release);
    push_epoch_.fetch_add(1, std::memory_order_release);
    push_epoch_.notify_one();
    return waits;
  }

  // Producer only.  Non-blocking; false = ring full, value untouched.
  [[nodiscard]] bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next_tail = next(tail);
    if (next_tail == head_.load(std::memory_order_acquire)) return false;
    slots_[tail] = std::move(value);
    tail_.store(next_tail, std::memory_order_release);
    push_epoch_.fetch_add(1, std::memory_order_release);
    push_epoch_.notify_one();
    return true;
  }

  // Consumer only.  Blocks until an item arrives or the queue is closed and
  // drained; false = closed + empty (terminal).
  [[nodiscard]] bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (head != tail_.load(std::memory_order_acquire)) break;
      const std::uint32_t seen = push_epoch_.load(std::memory_order_acquire);
      if (head != tail_.load(std::memory_order_acquire)) break;
      if (closed_.load(std::memory_order_acquire)) {
        // close() precedes its epoch bump, so this recheck is final.
        if (head == tail_.load(std::memory_order_acquire)) return false;
        break;
      }
      push_epoch_.wait(seen, std::memory_order_acquire);
    }
    out = std::move(slots_[head]);
    head_.store(next(head), std::memory_order_release);
    pop_epoch_.fetch_add(1, std::memory_order_release);
    pop_epoch_.notify_one();
    return true;
  }

  // Consumer only.  Non-blocking; false = nothing buffered right now.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head]);
    head_.store(next(head), std::memory_order_release);
    pop_epoch_.fetch_add(1, std::memory_order_release);
    pop_epoch_.notify_one();
    return true;
  }

  // Producer side: no more pushes will come.  Idempotent.
  void close() {
    closed_.store(true, std::memory_order_release);
    push_epoch_.fetch_add(1, std::memory_order_release);
    push_epoch_.notify_one();
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size() - 1;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return i + 1 == slots_.size() ? 0 : i + 1;
  }

  std::vector<T> slots_;
  // Producer- and consumer-owned state on separate cache lines so the two
  // threads never false-share.
  alignas(64) std::atomic<std::size_t> tail_{0};        // producer writes
  alignas(64) std::atomic<std::uint32_t> push_epoch_{0};
  alignas(64) std::atomic<std::size_t> head_{0};        // consumer writes
  alignas(64) std::atomic<std::uint32_t> pop_epoch_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace kw

#endif  // KW_UTIL_SPSC_QUEUE_H
