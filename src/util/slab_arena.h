#pragma once
// SlabArena<T>: a typed, slab-backed, offset-addressed block arena.
//
// Blocks are carved bump-pointer style out of geometrically growing
// slabs: slab k holds (64 << k) elements, so an arena's slab count is
// logarithmic in its size, a tiny arena touches only tiny slabs, and
// total slab storage is at most ~2x the carved cells.  A handle is the
// block's GLOBAL element offset (slab k starts at offset 64*(2^k - 1)),
// decoded back to (slab, offset) with one bit_width -- so handles stay
// valid as slabs are added and when the arena (and whatever owns it) is
// copied or moved, and the arena can be memberwise-copied together with
// the structures holding its handles (bank clones, spanner merges).
// Slabs never move once allocated: growth never copies a cell -- the
// amortization per-entry vectors buy with geometric capacity, the slab
// list gets by construction -- and data(handle) pointers are STABLE
// across later allocate() calls.
//
// Rules for callers:
//   * allocate(count) returns a zero-initialized block of `count`
//     elements (value-initialized; freelist reuse is re-zeroed).  A
//     block never straddles slabs: widths too narrow for the block are
//     skipped (skipped slabs stay unallocated).
//   * free(handle, count) recycles the block into an exact-size
//     freelist bucket; the next allocate of the same count reuses it.
//   * reset() drops every block (and the slabs backing them) at once.
//
// T must be trivially destructible (cells, flags) -- that is what makes
// reset() and free() constant-time per slab.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace kw {

template <typename T>
class SlabArena {
  static_assert(std::is_trivially_destructible_v<T>,
                "SlabArena requires trivially destructible elements");

 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  // Returns a zero-initialized block of `count` elements; kNull if
  // count == 0.  Never invalidates data() pointers of other blocks.
  [[nodiscard]] Handle allocate(std::size_t count) {
    if (count == 0) return kNull;
    if (count < free_.size() && !free_[count].empty()) {
      const Handle h = free_[count].back();
      free_[count].pop_back();
      free_slots_ -= count;
      T* p = data(h);
      for (std::size_t i = 0; i < count; ++i) p[i] = T{};
      return h;
    }
    if (slabs_.empty() ||
        bump_ + count > width_of(slabs_.size() - 1)) {
      // Seal the current slab and open the first one wide enough for
      // the block (narrower widths are skipped, left unallocated).
      while (true) {
        const std::size_t k = slabs_.size();
        if (start_of(k) + width_of(k) >
            static_cast<std::size_t>(kNull)) {
          throw std::length_error("SlabArena: handle space exhausted");
        }
        slabs_.emplace_back();
        if (width_of(k) >= count) {
          // Reserve the full width but only size (and so zero-fill) per
          // carved block below: resize within capacity never moves the
          // slab, so pointer stability holds and a carve touches just
          // the block's own cells.
          slabs_.back().reserve(width_of(k));
          bump_ = 0;
          break;
        }
      }
    }
    slabs_.back().resize(bump_ + count);  // value-inits the new block
    const Handle h =
        static_cast<Handle>(start_of(slabs_.size() - 1) + bump_);
    bump_ += count;
    used_ += count;
    return h;
  }

  // Recycles a block for reuse by a later allocate() of the same count.
  // The caller owns the pairing of handle and count (blocks carry no
  // header); freeing with the wrong count corrupts the freelist.
  void free(Handle h, std::size_t count) {
    if (h == kNull || count == 0) return;
    if (count >= free_.size()) free_.resize(count + 1);
    free_[count].push_back(h);
    free_slots_ += count;
  }

  // Drops every block -- and the slabs backing them -- at once.
  void reset() {
    slabs_.clear();
    for (auto& bucket : free_) bucket.clear();
    bump_ = 0;
    used_ = 0;
    free_slots_ = 0;
  }

  [[nodiscard]] T* data(Handle h) {
    const std::size_t k = slab_of(h);
    return slabs_[k].data() + (h - start_of(k));
  }
  [[nodiscard]] const T* data(Handle h) const {
    const std::size_t k = slab_of(h);
    return slabs_[k].data() + (h - start_of(k));
  }

  // Total element slots ever carved (live + recycled).
  [[nodiscard]] std::size_t used_slots() const { return used_; }
  // Slots currently parked on freelists.
  [[nodiscard]] std::size_t free_slots() const { return free_slots_; }
  [[nodiscard]] std::size_t live_slots() const {
    return used_ - free_slots_;
  }

 private:
  static constexpr std::size_t kBaseLog2 = 6;  // slab 0: 64 elements

  // Slab k spans global offsets [64*(2^k - 1), 64*(2^(k+1) - 1)).
  [[nodiscard]] static constexpr std::size_t width_of(std::size_t k) {
    return std::size_t{1} << (kBaseLog2 + k);
  }
  [[nodiscard]] static constexpr std::size_t start_of(std::size_t k) {
    return ((std::size_t{1} << k) - 1) << kBaseLog2;
  }
  [[nodiscard]] static std::size_t slab_of(Handle h) {
    const std::size_t q =
        (static_cast<std::size_t>(h) >> kBaseLog2) + 1;
    return static_cast<std::size_t>(std::bit_width(q)) - 1;
  }

  std::vector<std::vector<T>> slabs_;
  std::size_t bump_ = 0;  // next free element of the LAST slab
  std::size_t used_ = 0;  // total elements carved across all slabs
  // Exact-size buckets: free_[count] holds handles of freed blocks of
  // exactly `count` elements.  Block sizes in this codebase are small
  // multiples of a per-structure stride, so the bucket vector stays
  // short.
  std::vector<std::vector<Handle>> free_;
  std::size_t free_slots_ = 0;
};

}  // namespace kw
