// Small integer helpers shared across modules.
#ifndef KW_UTIL_BIT_UTIL_H
#define KW_UTIL_BIT_UTIL_H

#include <bit>
#include <cstdint>

namespace kw {

// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 64 - static_cast<std::uint32_t>(std::countl_zero(x - 1));
}

// floor(log2(x)) for x >= 1; returns 0 for x == 0 as a safe default.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  return 63 - static_cast<std::uint32_t>(std::countl_zero(x));
}

// Smallest power of two >= x (x >= 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : (1ULL << ceil_log2(x));
}

}  // namespace kw

#endif  // KW_UTIL_BIT_UTIL_H
