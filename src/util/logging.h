// Minimal leveled logging to stderr.  Benchmarks print their result tables to
// stdout; diagnostics go through here so the two never interleave.
#ifndef KW_UTIL_LOGGING_H
#define KW_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace kw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped.  Defaults to kWarn so
// tests and benches stay quiet unless something is wrong.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace kw

#define KW_LOG(level) ::kw::detail::LogLine(::kw::LogLevel::level)

#endif  // KW_UTIL_LOGGING_H
