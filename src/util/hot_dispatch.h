// Runtime ISA dispatch for hot kernels.
//
// KW_TARGET_CLONES marks a function for GCC/Clang function multi-versioning:
// the compiler emits a portable baseline clone plus an x86-64-v3-class clone
// (AVX2 + BMI2 -- flexible-register MULX is what the F_{2^61-1} multiply
// chains want) and installs an ifunc resolver that picks per CPU at load
// time.  The build stays portable; no -march flag required (the opt-in
// KW_NATIVE CMake toggle exists for whole-program native builds).
//
// Disabled under sanitizers (ifunc resolvers run before the ASan runtime is
// ready) and on toolchains without the attribute, where it expands to
// nothing and the baseline code is used everywhere.
#ifndef KW_UTIL_HOT_DISPATCH_H
#define KW_UTIL_HOT_DISPATCH_H

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KW_NO_TARGET_CLONES_ 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KW_NO_TARGET_CLONES_ 1
#endif
#endif

// GCC only: clang's target_clones dialect has lagged on "arch=" strings
// across the versions our CI meets, and the baseline clone is what its
// builds would pick anyway.
#if !defined(KW_NO_TARGET_CLONES_) && defined(__x86_64__) && \
    defined(__gnu_linux__) && defined(__GNUC__) && !defined(__clang__) && \
    defined(__has_attribute)
#if __has_attribute(target_clones)
#define KW_TARGET_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#endif
#endif

#ifndef KW_TARGET_CLONES
#define KW_TARGET_CLONES
#endif

#endif  // KW_UTIL_HOT_DISPATCH_H
