#include "agm/spanning_forest.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "graph/connectivity.h"

namespace kw {

ForestResult agm_spanning_forest(const BankGroup& group,
                                 std::size_t group_first, std::size_t rounds,
                                 const std::vector<std::uint32_t>& partition,
                                 WorkerPool* pool,
                                 std::size_t decode_lanes) {
  const auto n = static_cast<Vertex>(group.vertices());
  if (partition.size() != n) {
    throw std::invalid_argument("partition size mismatch");
  }
  if (group_first + rounds > group.groups()) {
    throw std::invalid_argument("forest round range exceeds bank group");
  }
  // Union-find over original vertices; supernodes pre-merged.  Note: edges
  // internal to a supernode cancel in the summed sketch only if the
  // supernode's member set is summed, which is exactly what we do -- so a
  // decoded edge is always a boundary edge of its component.
  UnionFind uf(n);
  {
    std::vector<Vertex> first_of(n, kInvalidVertex);
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t label = partition[v];
      if (label >= n) throw std::invalid_argument("bad partition label");
      if (first_of[label] == kInvalidVertex) {
        first_of[label] = v;
      } else {
        uf.unite(first_of[label], v);
      }
    }
  }

  // Lanes the decode scatter may actually occupy; 1 = plain loop.
  std::size_t lanes = 1;
  if (pool != nullptr) {
    lanes = pool->lanes();
    if (decode_lanes != 0) lanes = std::min(lanes, decode_lanes);
    lanes = std::max<std::size_t>(lanes, 1);
  }

  ForestResult result;
  // Decode-side scratch, reused across rounds (every round's bank shares
  // one geometry): one summed-stripe accumulator per LANE, the
  // component-membership counting sort, the per-component decode slots,
  // and the per-round merge list.
  const std::size_t stripe = group.cells_per_stripe();
  std::vector<OneSparseCell> accs(lanes * stripe);
  std::vector<Vertex> root_of(n);
  std::vector<Vertex> members(n);           // vertices grouped by component
  std::vector<std::uint32_t> member_end(n);  // running cursor -> end fences
  std::vector<Vertex> roots;                 // component roots, ascending
  struct RootDecode {
    Edge edge{};
    bool has_edge = false;
    bool failed = false;
  };
  std::vector<RootDecode> decoded;
  std::vector<Edge> merges;
  for (std::size_t round = 0; round < rounds; ++round) {
    const BankGroup::View bank = group.view(group_first + round);
    // Group vertices by current component: one counting sort keyed by the
    // component root, flat arrays instead of n vector<Vertex> rebuilds.
    std::fill(member_end.begin(), member_end.end(), 0);
    for (Vertex v = 0; v < n; ++v) {
      root_of[v] = uf.find(v);
      ++member_end[root_of[v]];
    }
    std::uint32_t running = 0;
    for (Vertex root = 0; root < n; ++root) {
      running += member_end[root];
      member_end[root] = running - member_end[root];  // start cursor
    }
    for (Vertex v = 0; v < n; ++v) {
      members[member_end[root_of[v]]++] = v;  // leaves end fences behind
    }
    roots.clear();
    for (Vertex root = 0; root < n; ++root) {
      const std::uint32_t begin = root == 0 ? 0 : member_end[root - 1];
      if (begin != member_end[root]) roots.push_back(root);
    }
    // One summed stripe and one decoded outgoing edge per component.  The
    // round's inputs (bank, counting sort, root_of) are frozen during the
    // scatter; task i writes decoded[i] only and sums into its own lane's
    // accumulator stripe, so any lane assignment decodes the exact
    // sequential cells -- the fold below walks slots in component order,
    // keeping failure counts and merge order bit-identical.
    decoded.assign(roots.size(), RootDecode{});
    const auto decode_root = [&](std::size_t i, std::size_t lane) {
      const Vertex root = roots[i];
      const std::uint32_t begin = root == 0 ? 0 : member_end[root - 1];
      const std::uint32_t end = member_end[root];
      const std::span<OneSparseCell> acc{accs.data() + lane * stripe, stripe};
      std::fill(acc.begin(), acc.end(), OneSparseCell{});
      for (std::uint32_t m = begin; m < end; ++m) {
        bank.accumulate(acc, members[m], 1);
      }
      const auto rec = bank.decode_cells(acc);
      if (!rec.has_value()) {
        // Zero sketch = isolated component (fine); nonzero = decode failure.
        decoded[i].failed = !BankGroup::cells_zero(acc);
        return;
      }
      const auto [u, v] = pair_from_id(rec->coord, n);
      if (root_of[u] == root_of[v]) return;  // should not happen; defensive
      decoded[i].edge = {u, v, 1.0};
      decoded[i].has_edge = true;
    };
    if (pool != nullptr && lanes > 1 && roots.size() > 1) {
      pool->run_indexed(roots.size(), decode_root, lanes);
    } else {
      for (std::size_t i = 0; i < roots.size(); ++i) decode_root(i, 0);
    }
    merges.clear();
    std::size_t round_failures = 0;
    for (const RootDecode& d : decoded) {
      if (d.failed) ++round_failures;
      if (d.has_edge) merges.push_back(d.edge);
    }
    result.decode_failures_per_round.push_back(round_failures);
    result.decode_failures += round_failures;
    if (merges.empty()) {
      result.rounds_used = round + 1;
      result.complete = round_failures == 0;
      return result;  // fixed point: spanning unless a decode failed
    }
    for (const auto& e : merges) {
      if (uf.unite(e.u, e.v)) result.edges.push_back(e);
    }
    result.rounds_used = round + 1;
  }
  // Rounds exhausted; completeness unknown -- report potentially incomplete
  // so callers can retry with more rounds.
  result.complete = false;
  return result;
}

ForestResult agm_spanning_forest(const AgmGraphSketch& sketch,
                                 const std::vector<std::uint32_t>& partition) {
  return agm_spanning_forest(sketch.bank_group(), 0, sketch.rounds(),
                             partition);
}

ForestResult agm_spanning_forest(const AgmGraphSketch& sketch) {
  std::vector<std::uint32_t> identity(sketch.n());
  std::iota(identity.begin(), identity.end(), 0u);
  return agm_spanning_forest(sketch, identity);
}

ForestResult agm_spanning_forest(const AgmGraphSketch& sketch,
                                 const std::vector<std::uint32_t>& partition,
                                 WorkerPool& pool, std::size_t decode_lanes) {
  return agm_spanning_forest(sketch.bank_group(), 0, sketch.rounds(),
                             partition, &pool, decode_lanes);
}

// ---- SpanningForestProcessor ----------------------------------------------

SpanningForestProcessor::SpanningForestProcessor(Vertex n,
                                                 const AgmConfig& config)
    : config_(config), sketch_(n, config) {}

SpanningForestProcessor::SpanningForestProcessor(
    Vertex n, const AgmConfig& config, std::vector<std::uint32_t> partition)
    : config_(config), sketch_(n, config), partition_(std::move(partition)) {}

void SpanningForestProcessor::absorb(std::span<const EdgeUpdate> batch) {
  if (finished_) {
    throw std::logic_error("SpanningForestProcessor: absorb() after finish()");
  }
  sketch_.absorb(batch);
}

void SpanningForestProcessor::advance_pass() {
  throw std::logic_error(
      "SpanningForestProcessor: single-pass, advance_pass() is never legal");
}

void SpanningForestProcessor::use_worker_pool(std::shared_ptr<WorkerPool> pool,
                                              std::size_t decode_lanes) {
  pool_ = std::move(pool);
  decode_lanes_ = decode_lanes;
}

void SpanningForestProcessor::finish() {
  if (finished_) {
    throw std::logic_error("SpanningForestProcessor: finish() called twice");
  }
  finished_ = true;
  std::vector<std::uint32_t> identity;
  const std::vector<std::uint32_t>* part = &partition_;
  if (partition_.empty()) {
    identity.resize(sketch_.n());
    std::iota(identity.begin(), identity.end(), 0u);
    part = &identity;
  }
  result_ = agm_spanning_forest(sketch_.bank_group(), 0, sketch_.rounds(),
                                *part, pool_.get(), decode_lanes_);
  health_.name = "SpanningForest";
  health_.l0_failures = result_->decode_failures;
  health_.failures_per_round = result_->decode_failures_per_round;
  health_.degraded = !result_->complete;
}

ProcessorHealth SpanningForestProcessor::health() const { return health_; }

std::unique_ptr<StreamProcessor> SpanningForestProcessor::clone_empty() const {
  if (finished_) return nullptr;
  // Fresh sketch with the shared randomness (seeded config); the partition
  // only matters at finish(), which runs on the merged primary.
  return std::make_unique<SpanningForestProcessor>(sketch_.n(), config_);
}

void SpanningForestProcessor::merge(StreamProcessor&& other) {
  auto& o = merge_cast<SpanningForestProcessor>(other);
  sketch_.merge(o.sketch_, 1);
}

ForestResult SpanningForestProcessor::take_result() {
  if (!result_.has_value()) {
    throw std::logic_error(
        "SpanningForestProcessor: result unavailable (finish() not reached "
        "or result already taken)");
  }
  ForestResult out = std::move(*result_);
  result_.reset();
  return out;
}

}  // namespace kw
