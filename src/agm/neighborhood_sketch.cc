#include "agm/neighborhood_sketch.h"

#include <stdexcept>

#include "util/random.h"

namespace kw {

std::vector<std::uint64_t> agm_round_seeds(const AgmConfig& config) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(config.rounds);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    // Same seed for every vertex within a round => summable; different seed
    // across rounds => independent retries.  (Seed constants unchanged from
    // the per-round SketchBank era, so cells are bit-identical.)
    seeds.push_back(derive_seed(config.seed, 0xa6000 + r));
  }
  return seeds;
}

namespace {

[[nodiscard]] BankGroupConfig group_config(Vertex n, const AgmConfig& config) {
  BankGroupConfig c;
  c.max_coord = num_pairs(n);
  c.instances = config.sampler_instances;
  c.seeds = agm_round_seeds(config);
  return c;
}

}  // namespace

AgmGraphSketch::AgmGraphSketch(Vertex n, const AgmConfig& config)
    : n_(n), config_(config), group_(n, group_config(n, config)) {
  if (n < 2) throw std::invalid_argument("AGM sketch needs n >= 2");
}

void AgmGraphSketch::update(Vertex u, Vertex v, std::int64_t delta) {
  if (u == v || u >= n_ || v >= n_) {
    throw std::out_of_range("AGM update endpoints invalid");
  }
  const std::uint64_t coord = pair_id(u, v, n_);
  const Vertex lo = u < v ? u : v;
  const Vertex hi = u < v ? v : u;
  group_.update_pair(0, group_.groups(), lo, hi, coord, delta);
}

void AgmGraphSketch::stage(Vertex n, std::span<const EdgeUpdate> batch,
                           std::vector<BankPairUpdate>& out) {
  // Whole-span validation before the first append keeps the documented
  // all-or-nothing contract: a throw leaves `out` untouched, never holding
  // a partial prefix a caller could accidentally ingest.
  for (const EdgeUpdate& u : batch) {
    if (u.u != u.v && (u.u >= n || u.v >= n)) {
      throw std::out_of_range("AGM update endpoints invalid");
    }
  }
  out.clear();
  out.reserve(batch.size());
  for (const EdgeUpdate& u : batch) {
    if (u.u == u.v) continue;
    BankPairUpdate b;
    b.lo = u.u < u.v ? u.u : u.v;
    b.hi = u.u < u.v ? u.v : u.u;
    b.coord = pair_id(u.u, u.v, n);
    b.delta = u.delta;
    out.push_back(b);
  }
}

void AgmGraphSketch::ingest_staged(std::span<const BankPairUpdate> staged) {
  group_.ingest_pairs(staged);
}

void AgmGraphSketch::absorb(std::span<const EdgeUpdate> batch) {
  stage(n_, batch, staging_);
  ingest_staged(staging_);
}

void AgmGraphSketch::subtract_edge(Vertex u, Vertex v,
                                   std::int64_t multiplicity) {
  update(u, v, -multiplicity);
}

void AgmGraphSketch::merge(const AgmGraphSketch& other, std::int64_t sign) {
  if (other.n_ != n_ || other.config_.rounds != config_.rounds ||
      other.config_.seed != config_.seed) {
    throw std::invalid_argument("merging incompatible AGM sketches");
  }
  group_.merge(other.group_, sign);
}

}  // namespace kw
