#include "agm/neighborhood_sketch.h"

#include <stdexcept>

#include "util/random.h"

namespace kw {

namespace {

[[nodiscard]] SketchBankConfig round_config(Vertex n, const AgmConfig& config,
                                            std::size_t round) {
  SketchBankConfig c;
  c.max_coord = num_pairs(n);
  c.instances = config.sampler_instances;
  // Same seed for every vertex within a round => summable; different seed
  // across rounds => independent retries.  (Seed constants unchanged from
  // the per-vertex L0Sampler era, so decodes are bit-identical.)
  c.seed = derive_seed(config.seed, 0xa6000 + round);
  return c;
}

}  // namespace

AgmGraphSketch::AgmGraphSketch(Vertex n, const AgmConfig& config)
    : n_(n), config_(config) {
  if (n < 2) throw std::invalid_argument("AGM sketch needs n >= 2");
  rounds_.reserve(config.rounds);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    rounds_.emplace_back(n, round_config(n, config, r));
  }
}

void AgmGraphSketch::update(Vertex u, Vertex v, std::int64_t delta) {
  if (u == v || u >= n_ || v >= n_) {
    throw std::out_of_range("AGM update endpoints invalid");
  }
  const std::uint64_t coord = pair_id(u, v, n_);
  const Vertex lo = u < v ? u : v;
  const Vertex hi = u < v ? v : u;
  for (auto& bank : rounds_) {
    bank.update_pair(lo, hi, coord, delta);
  }
}

void AgmGraphSketch::stage(Vertex n, std::span<const EdgeUpdate> batch,
                           std::vector<BankPairUpdate>& out) {
  out.clear();
  out.reserve(batch.size());
  for (const EdgeUpdate& u : batch) {
    if (u.u == u.v) continue;
    if (u.u >= n || u.v >= n) {
      throw std::out_of_range("AGM update endpoints invalid");
    }
    BankPairUpdate b;
    b.lo = u.u < u.v ? u.u : u.v;
    b.hi = u.u < u.v ? u.v : u.u;
    b.coord = pair_id(u.u, u.v, n);
    b.delta = u.delta;
    out.push_back(b);
  }
}

void AgmGraphSketch::ingest_staged(std::span<const BankPairUpdate> staged) {
  if (staged.empty()) return;
  for (auto& bank : rounds_) {
    bank.ingest_pairs(staged);
  }
}

void AgmGraphSketch::absorb(std::span<const EdgeUpdate> batch) {
  stage(n_, batch, staging_);
  ingest_staged(staging_);
}

void AgmGraphSketch::subtract_edge(Vertex u, Vertex v,
                                   std::int64_t multiplicity) {
  update(u, v, -multiplicity);
}

void AgmGraphSketch::merge(const AgmGraphSketch& other, std::int64_t sign) {
  if (other.n_ != n_ || other.config_.rounds != config_.rounds ||
      other.config_.seed != config_.seed) {
    throw std::invalid_argument("merging incompatible AGM sketches");
  }
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    rounds_[r].merge(other.rounds_[r], sign);
  }
}

std::size_t AgmGraphSketch::nominal_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& bank : rounds_) total += bank.nominal_bytes();
  return total;
}

}  // namespace kw
