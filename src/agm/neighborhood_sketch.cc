#include "agm/neighborhood_sketch.h"

#include <stdexcept>

#include "util/random.h"

namespace kw {

namespace {

[[nodiscard]] L0SamplerConfig round_config(Vertex n, const AgmConfig& config,
                                           std::size_t round) {
  L0SamplerConfig c;
  c.max_coord = num_pairs(n);
  c.instances = config.sampler_instances;
  // Same seed for every vertex within a round => summable; different seed
  // across rounds => independent retries.
  c.seed = derive_seed(config.seed, 0xa6000 + round);
  return c;
}

}  // namespace

AgmGraphSketch::AgmGraphSketch(Vertex n, const AgmConfig& config)
    : n_(n), config_(config) {
  if (n < 2) throw std::invalid_argument("AGM sketch needs n >= 2");
  samplers_.reserve(static_cast<std::size_t>(n) * config.rounds);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t r = 0; r < config.rounds; ++r) {
      samplers_.emplace_back(round_config(n, config, r));
    }
  }
}

void AgmGraphSketch::update(Vertex u, Vertex v, std::int64_t delta) {
  if (u == v || u >= n_ || v >= n_) {
    throw std::out_of_range("AGM update endpoints invalid");
  }
  const std::uint64_t coord = pair_id(u, v, n_);
  const Vertex lo = u < v ? u : v;
  const Vertex hi = u < v ? v : u;
  for (std::size_t r = 0; r < config_.rounds; ++r) {
    samplers_[lo * config_.rounds + r].update(coord, delta);
    samplers_[hi * config_.rounds + r].update(coord, -delta);
  }
}

void AgmGraphSketch::subtract_edge(Vertex u, Vertex v,
                                   std::int64_t multiplicity) {
  update(u, v, -multiplicity);
}

void AgmGraphSketch::merge(const AgmGraphSketch& other, std::int64_t sign) {
  if (other.n_ != n_ || other.config_.rounds != config_.rounds ||
      other.config_.seed != config_.seed) {
    throw std::invalid_argument("merging incompatible AGM sketches");
  }
  for (std::size_t i = 0; i < samplers_.size(); ++i) {
    samplers_[i].merge(other.samplers_[i], sign);
  }
}

L0Sampler AgmGraphSketch::zero_sampler(std::size_t round) const {
  return L0Sampler(round_config(n_, config_, round));
}

std::size_t AgmGraphSketch::nominal_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : samplers_) total += s.nominal_bytes();
  return total;
}

}  // namespace kw
