// k-edge-connectivity certificates from linear sketches -- the [AGM12a]
// construction the paper's introduction cites ("connectivity,
// k-connectivity ... with near linear space").
//
// Maintain k independent AGM sketch sets during the stream.  Afterwards,
// extract a spanning forest F_1 from the first sketch, subtract F_1's edges
// from the second (linearity!), extract F_2, and so on.  The union
// F_1 u ... u F_k is a sparse certificate: it preserves every cut of G up
// to size k, hence min(lambda(G), k) = lambda(certificate)
// (Nagamochi-Ibaraki).  Space: k times one sketch.
//
// Storage: the k layers x rounds banks are ONE fused BankGroup (layer i's
// round r at group i*rounds + r, seeds unchanged from the per-layer
// AgmGraphSketch era), so an edge update is staged once for all k*rounds
// banks instead of once per layer per round -- see sketch/bank_group.h.
#ifndef KW_AGM_K_CONNECTIVITY_H
#define KW_AGM_K_CONNECTIVITY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "agm/neighborhood_sketch.h"
#include "engine/stream_processor.h"
#include "graph/graph.h"
#include "stream/dynamic_stream.h"

namespace kw {

struct KConnectivityResult {
  std::vector<std::vector<Edge>> forests;  // F_1 .. F_k, edge-disjoint
  Graph certificate;                       // their union
  bool complete = true;                    // every forest extraction clean
  // Decode failures summed per layer (forest F_i's Boruvka rounds) and in
  // total -- see ForestResult::decode_failures.
  std::vector<std::size_t> decode_failures_per_layer;
  std::size_t decode_failures = 0;
};

// Streaming front-end: k sketch sets updated together in one pass, driven
// either per-update or as an engine StreamProcessor.
class KConnectivitySketch final : public StreamProcessor {
 public:
  KConnectivitySketch(Vertex n, std::size_t k, const AgmConfig& config);

  // --- StreamProcessor (engine-driven, single pass) ---
  [[nodiscard]] std::size_t passes_required() const noexcept override {
    return 1;
  }
  [[nodiscard]] Vertex n() const noexcept override { return n_; }
  void absorb(std::span<const EdgeUpdate> batch) override;
  void advance_pass() override;  // single-pass: always throws
  void finish() override;        // peels the certificate out of the sketches
  [[nodiscard]] std::unique_ptr<StreamProcessor> clone_empty() const override;
  void merge(StreamProcessor&& other) override;

  // Valid once after finish().
  [[nodiscard]] KConnectivityResult take_result();

  // Decode-failure accounting (engine/health.h); survives take_result().
  [[nodiscard]] ProcessorHealth health() const override;

  // --- per-update interface ---
  void update(Vertex u, Vertex v, std::int64_t delta);

  // this += sign * other (distributed merge); same (n, k, seed) required.
  void merge(const KConnectivitySketch& other, std::int64_t sign = 1);

  // Consumes the sketches: peels k edge-disjoint spanning forests.
  [[nodiscard]] KConnectivityResult extract() &&;

  [[nodiscard]] std::size_t nominal_bytes() const noexcept;

  // Convenience: exactly one pass-counted replay via StreamEngine.
  [[nodiscard]] static KConnectivityResult from_stream(
      const DynamicStream& stream, std::size_t k, const AgmConfig& config);

  // The fused k*rounds-group storage (layer-level slicing for tests).
  [[nodiscard]] const BankGroup& bank_group() const noexcept {
    return group_;
  }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  // ---- serialization (src/serialize/processor_serialize.cc) ------------
  [[nodiscard]] std::uint32_t serial_tag() const noexcept override;
  void serialize(ser::Writer& w) const override;
  void deserialize(ser::Reader& r) override;

 private:
  Vertex n_;
  std::size_t k_ = 0;
  AgmConfig config_;
  bool finished_ = false;
  BankGroup group_;  // layer i's round r at group i * rounds + r
  std::vector<BankPairUpdate> staging_;  // absorb() batch, staged once
  std::optional<KConnectivityResult> result_;
  ProcessorHealth health_;  // filled at finish()
};

}  // namespace kw

#endif  // KW_AGM_K_CONNECTIVITY_H
