// k-edge-connectivity certificates from linear sketches -- the [AGM12a]
// construction the paper's introduction cites ("connectivity,
// k-connectivity ... with near linear space").
//
// Maintain k independent AGM sketch sets during the stream.  Afterwards,
// extract a spanning forest F_1 from the first sketch, subtract F_1's edges
// from the second (linearity!), extract F_2, and so on.  The union
// F_1 u ... u F_k is a sparse certificate: it preserves every cut of G up
// to size k, hence min(lambda(G), k) = lambda(certificate)
// (Nagamochi-Ibaraki).  Space: k times one sketch.
#ifndef KW_AGM_K_CONNECTIVITY_H
#define KW_AGM_K_CONNECTIVITY_H

#include <cstdint>
#include <vector>

#include "agm/neighborhood_sketch.h"
#include "graph/graph.h"
#include "stream/dynamic_stream.h"

namespace kw {

struct KConnectivityResult {
  std::vector<std::vector<Edge>> forests;  // F_1 .. F_k, edge-disjoint
  Graph certificate;                       // their union
  bool complete = true;                    // every forest extraction clean
};

// Streaming front-end: k sketch sets updated together in one pass.
class KConnectivitySketch {
 public:
  KConnectivitySketch(Vertex n, std::size_t k, const AgmConfig& config);

  void update(Vertex u, Vertex v, std::int64_t delta);

  // this += sign * other (distributed merge); same (n, k, seed) required.
  void merge(const KConnectivitySketch& other, std::int64_t sign = 1);

  // Consumes the sketches: peels k edge-disjoint spanning forests.
  [[nodiscard]] KConnectivityResult extract() &&;

  [[nodiscard]] std::size_t nominal_bytes() const noexcept;

  // Convenience: one pass over a stream.
  [[nodiscard]] static KConnectivityResult from_stream(
      const DynamicStream& stream, std::size_t k, const AgmConfig& config);

 private:
  Vertex n_;
  std::vector<AgmGraphSketch> layers_;
};

}  // namespace kw

#endif  // KW_AGM_K_CONNECTIVITY_H
