// Spanning forest from AGM sketches (Theorem 10, [AGM12a]).
//
// Boruvka over supernodes: each round sums the member sketches of every
// active component (linearity), decodes one outgoing edge per component, and
// contracts.  O(log n) rounds suffice whp.  Components may start as given
// supernodes (the contraction the additive spanner needs), and explicit
// edges can be subtracted from the sketch first (E_low) -- both match how
// Algorithm 3 consumes this primitive.
#ifndef KW_AGM_SPANNING_FOREST_H
#define KW_AGM_SPANNING_FOREST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "agm/neighborhood_sketch.h"
#include "engine/stream_processor.h"
#include "graph/graph.h"
#include "util/worker_pool.h"

namespace kw {

struct ForestResult {
  std::vector<Edge> edges;     // forest edges (endpoints in original ids)
  std::size_t rounds_used = 0;
  bool complete = true;  // false if rounds ran out while still merging
  // Decode failures (nonzero summed sketch the bank could not decode) per
  // Boruvka round, and their sum.  Redundancy can absorb failures: complete
  // may be true with nonzero counters when later rounds finished the merge.
  std::vector<std::size_t> decode_failures_per_round;
  std::size_t decode_failures = 0;
};

// Computes a spanning forest of the sketched graph.  `partition[v]` gives
// the initial supernode of v (identity partition for a plain forest); the
// result connects supernodes, never returning an edge internal to one.
[[nodiscard]] ForestResult agm_spanning_forest(
    const AgmGraphSketch& sketch, const std::vector<std::uint32_t>& partition);

// Convenience: identity partition.
[[nodiscard]] ForestResult agm_spanning_forest(const AgmGraphSketch& sketch);

// Core implementation over a fused BankGroup slice: Boruvka over the
// `rounds` groups starting at `group_first` (pair coordinates over the
// group's vertex count).  KConnectivitySketch peels each layer's forest
// from its slice of one shared group this way.
//
// When `pool` is non-null, each round's per-component accumulate + decode
// fans out over the pool (at most `decode_lanes` lanes; 0 = all).  Round
// structure stays sequential: components are listed before the scatter,
// every task reads only the round's frozen union-find snapshot and writes
// its own decode slot (per-lane accumulator stripes keep scratch disjoint),
// and the merge fold walks the slots in component order -- so the forest is
// bit-identical to the sequential decode at every lane count.
[[nodiscard]] ForestResult agm_spanning_forest(
    const BankGroup& group, std::size_t group_first, std::size_t rounds,
    const std::vector<std::uint32_t>& partition, WorkerPool* pool = nullptr,
    std::size_t decode_lanes = 0);

// Threaded convenience over a whole sketch.
[[nodiscard]] ForestResult agm_spanning_forest(
    const AgmGraphSketch& sketch, const std::vector<std::uint32_t>& partition,
    WorkerPool& pool, std::size_t decode_lanes);

// Push-based front-end (Theorem 10 as a StreamProcessor): one pass
// maintaining the AGM sketches, Boruvka-over-sketches at finish().
// clone_empty()/merge() shard ingestion by the linearity of the sketches
// (the distributed setting of Section 1, in-process).
class SpanningForestProcessor final : public StreamProcessor {
 public:
  SpanningForestProcessor(Vertex n, const AgmConfig& config);
  // Supernode start partition, as in agm_spanning_forest.
  SpanningForestProcessor(Vertex n, const AgmConfig& config,
                          std::vector<std::uint32_t> partition);

  [[nodiscard]] std::size_t passes_required() const noexcept override {
    return 1;
  }
  [[nodiscard]] Vertex n() const noexcept override { return sketch_.n(); }
  void absorb(std::span<const EdgeUpdate> batch) override;
  void advance_pass() override;  // single-pass: always throws
  void finish() override;
  [[nodiscard]] std::unique_ptr<StreamProcessor> clone_empty() const override;
  void merge(StreamProcessor&& other) override;

  // Valid once after finish().
  [[nodiscard]] ForestResult take_result();

  // Decode-failure accounting (engine/health.h); survives take_result().
  [[nodiscard]] ProcessorHealth health() const override;

  // Adopts the engine's shared pool: the finish()-time Boruvka decode fans
  // out across decode_lanes of it (bit-identical at every lane count).
  void use_worker_pool(std::shared_ptr<WorkerPool> pool,
                       std::size_t decode_lanes) override;

  // The underlying sketch (e.g. for nominal_bytes accounting).
  [[nodiscard]] const AgmGraphSketch& sketch() const noexcept {
    return sketch_;
  }

  // ---- serialization (src/serialize/processor_serialize.cc) ------------
  [[nodiscard]] std::uint32_t serial_tag() const noexcept override;
  void serialize(ser::Writer& w) const override;
  void deserialize(ser::Reader& r) override;

 private:
  AgmConfig config_;
  AgmGraphSketch sketch_;
  std::vector<std::uint32_t> partition_;  // empty = identity
  bool finished_ = false;
  std::optional<ForestResult> result_;
  ProcessorHealth health_;  // filled at finish()
  // Engine-provided decode budget (use_worker_pool); empty = sequential.
  std::shared_ptr<WorkerPool> pool_;
  std::size_t decode_lanes_ = 0;
};

}  // namespace kw

#endif  // KW_AGM_SPANNING_FOREST_H
