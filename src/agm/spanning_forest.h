// Spanning forest from AGM sketches (Theorem 10, [AGM12a]).
//
// Boruvka over supernodes: each round sums the member sketches of every
// active component (linearity), decodes one outgoing edge per component, and
// contracts.  O(log n) rounds suffice whp.  Components may start as given
// supernodes (the contraction the additive spanner needs), and explicit
// edges can be subtracted from the sketch first (E_low) -- both match how
// Algorithm 3 consumes this primitive.
#ifndef KW_AGM_SPANNING_FOREST_H
#define KW_AGM_SPANNING_FOREST_H

#include <cstdint>
#include <vector>

#include "agm/neighborhood_sketch.h"
#include "graph/graph.h"

namespace kw {

struct ForestResult {
  std::vector<Edge> edges;     // forest edges (endpoints in original ids)
  std::size_t rounds_used = 0;
  bool complete = true;  // false if rounds ran out while still merging
};

// Computes a spanning forest of the sketched graph.  `partition[v]` gives
// the initial supernode of v (identity partition for a plain forest); the
// result connects supernodes, never returning an edge internal to one.
[[nodiscard]] ForestResult agm_spanning_forest(
    const AgmGraphSketch& sketch, const std::vector<std::uint32_t>& partition);

// Convenience: identity partition.
[[nodiscard]] ForestResult agm_spanning_forest(const AgmGraphSketch& sketch);

}  // namespace kw

#endif  // KW_AGM_SPANNING_FOREST_H
