#include "agm/k_connectivity.h"

#include <stdexcept>
#include <utility>

#include "agm/spanning_forest.h"
#include "engine/stream_engine.h"
#include "util/random.h"

namespace kw {

KConnectivitySketch::KConnectivitySketch(Vertex n, std::size_t k,
                                         const AgmConfig& config)
    : n_(n), config_(config) {
  if (k == 0) throw std::invalid_argument("k must be >= 1");
  layers_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    AgmConfig layer = config;
    layer.seed = derive_seed(config.seed, 0x6c0 + i);
    layers_.emplace_back(n, layer);
  }
}

void KConnectivitySketch::update(Vertex u, Vertex v, std::int64_t delta) {
  for (auto& layer : layers_) layer.update(u, v, delta);
}

void KConnectivitySketch::merge(const KConnectivitySketch& other,
                                std::int64_t sign) {
  if (other.layers_.size() != layers_.size() || other.n_ != n_) {
    throw std::invalid_argument("merging incompatible k-connectivity sketches");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].merge(other.layers_[i], sign);
  }
}

KConnectivityResult KConnectivitySketch::extract() && {
  KConnectivityResult result;
  result.certificate = Graph(n_);
  std::vector<Edge> removed;  // all forest edges peeled so far
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Subtract previously peeled forests from this layer (linearity).
    for (const auto& e : removed) {
      layers_[i].subtract_edge(e.u, e.v, 1);
    }
    const ForestResult forest = agm_spanning_forest(layers_[i]);
    result.complete = result.complete && forest.complete;
    for (const auto& e : forest.edges) {
      result.certificate.add_edge(e.u, e.v, e.weight);
      removed.push_back(e);
    }
    result.forests.push_back(forest.edges);
  }
  return result;
}

std::size_t KConnectivitySketch::nominal_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.nominal_bytes();
  return total;
}

void KConnectivitySketch::absorb(std::span<const EdgeUpdate> batch) {
  if (finished_) {
    throw std::logic_error("KConnectivitySketch: absorb() after finish()");
  }
  // Staging (self-loop filter, pair ids) depends only on (n, batch): do it
  // once and feed every layer the canonicalized updates.
  AgmGraphSketch::stage(n_, batch, staging_);
  for (auto& layer : layers_) layer.ingest_staged(staging_);
}

void KConnectivitySketch::advance_pass() {
  throw std::logic_error(
      "KConnectivitySketch: single-pass, advance_pass() is never legal");
}

void KConnectivitySketch::finish() {
  if (finished_) {
    throw std::logic_error("KConnectivitySketch: finish() called twice");
  }
  finished_ = true;
  result_ = std::move(*this).extract();
}

std::unique_ptr<StreamProcessor> KConnectivitySketch::clone_empty() const {
  if (finished_) return nullptr;
  return std::make_unique<KConnectivitySketch>(n_, layers_.size(), config_);
}

void KConnectivitySketch::merge(StreamProcessor&& other) {
  merge(merge_cast<KConnectivitySketch>(other), 1);
}

KConnectivityResult KConnectivitySketch::take_result() {
  if (!result_.has_value()) {
    throw std::logic_error(
        "KConnectivitySketch: result unavailable (finish() not reached or "
        "result already taken)");
  }
  KConnectivityResult out = std::move(*result_);
  result_.reset();
  return out;
}

KConnectivityResult KConnectivitySketch::from_stream(
    const DynamicStream& stream, std::size_t k, const AgmConfig& config) {
  KConnectivitySketch sketch(stream.n(), k, config);
  StreamEngine::run_single(sketch, stream);
  return sketch.take_result();
}

}  // namespace kw
