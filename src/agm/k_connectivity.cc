#include "agm/k_connectivity.h"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "agm/spanning_forest.h"
#include "engine/stream_engine.h"
#include "util/random.h"

namespace kw {

namespace {

// One flat seed list covering every layer's rounds: layer i uses the seed
// chain the standalone AgmGraphSketch with seed derive_seed(seed, 0x6c0+i)
// would, so cells are bit-identical to the k-independent-sketches layout.
[[nodiscard]] BankGroupConfig group_config(Vertex n, std::size_t k,
                                           const AgmConfig& config) {
  BankGroupConfig c;
  c.max_coord = num_pairs(n);
  c.instances = config.sampler_instances;
  c.seeds.reserve(k * config.rounds);
  for (std::size_t i = 0; i < k; ++i) {
    AgmConfig layer = config;
    layer.seed = derive_seed(config.seed, 0x6c0 + i);
    const auto layer_seeds = agm_round_seeds(layer);
    c.seeds.insert(c.seeds.end(), layer_seeds.begin(), layer_seeds.end());
  }
  return c;
}

}  // namespace

KConnectivitySketch::KConnectivitySketch(Vertex n, std::size_t k,
                                         const AgmConfig& config)
    : n_(n), k_(k), config_(config) {
  if (k == 0) throw std::invalid_argument("k must be >= 1");
  if (n < 2) throw std::invalid_argument("AGM sketch needs n >= 2");
  group_ = BankGroup(n, group_config(n, k, config));
}

void KConnectivitySketch::update(Vertex u, Vertex v, std::int64_t delta) {
  if (u == v || u >= n_ || v >= n_) {
    throw std::out_of_range("AGM update endpoints invalid");
  }
  const std::uint64_t coord = pair_id(u, v, n_);
  const Vertex lo = u < v ? u : v;
  const Vertex hi = u < v ? v : u;
  group_.update_pair(0, group_.groups(), lo, hi, coord, delta);
}

void KConnectivitySketch::merge(const KConnectivitySketch& other,
                                std::int64_t sign) {
  if (other.k_ != k_ || other.n_ != n_) {
    throw std::invalid_argument("merging incompatible k-connectivity sketches");
  }
  group_.merge(other.group_, sign);
}

KConnectivityResult KConnectivitySketch::extract() && {
  KConnectivityResult result;
  result.certificate = Graph(n_);
  std::vector<std::uint32_t> identity(n_);
  std::iota(identity.begin(), identity.end(), 0u);
  std::vector<Edge> removed;  // all forest edges peeled so far
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t layer_first = i * config_.rounds;
    // Subtract previously peeled forests from this layer (linearity).
    for (const auto& e : removed) {
      const Vertex lo = e.u < e.v ? e.u : e.v;
      const Vertex hi = e.u < e.v ? e.v : e.u;
      group_.update_pair(layer_first, config_.rounds, lo, hi,
                         pair_id(e.u, e.v, n_), -1);
    }
    const ForestResult forest =
        agm_spanning_forest(group_, layer_first, config_.rounds, identity);
    result.complete = result.complete && forest.complete;
    result.decode_failures_per_layer.push_back(forest.decode_failures);
    result.decode_failures += forest.decode_failures;
    for (const auto& e : forest.edges) {
      result.certificate.add_edge(e.u, e.v, e.weight);
      removed.push_back(e);
    }
    result.forests.push_back(forest.edges);
  }
  return result;
}

std::size_t KConnectivitySketch::nominal_bytes() const noexcept {
  return group_.nominal_bytes();
}

void KConnectivitySketch::absorb(std::span<const EdgeUpdate> batch) {
  if (finished_) {
    throw std::logic_error("KConnectivitySketch: absorb() after finish()");
  }
  // Staging (self-loop filter, pair ids) depends only on (n, batch): do it
  // once into the reused buffer and drive ALL k*rounds banks with one
  // fused ingest.
  AgmGraphSketch::stage(n_, batch, staging_);
  group_.ingest_pairs(staging_);
}

void KConnectivitySketch::advance_pass() {
  throw std::logic_error(
      "KConnectivitySketch: single-pass, advance_pass() is never legal");
}

void KConnectivitySketch::finish() {
  if (finished_) {
    throw std::logic_error("KConnectivitySketch: finish() called twice");
  }
  finished_ = true;
  result_ = std::move(*this).extract();
  health_.name = "KConnectivity";
  health_.l0_failures = result_->decode_failures;
  health_.failures_per_round = result_->decode_failures_per_layer;
  health_.degraded = !result_->complete;
}

ProcessorHealth KConnectivitySketch::health() const { return health_; }

std::unique_ptr<StreamProcessor> KConnectivitySketch::clone_empty() const {
  if (finished_) return nullptr;
  return std::make_unique<KConnectivitySketch>(n_, k_, config_);
}

void KConnectivitySketch::merge(StreamProcessor&& other) {
  merge(merge_cast<KConnectivitySketch>(other), 1);
}

KConnectivityResult KConnectivitySketch::take_result() {
  if (!result_.has_value()) {
    throw std::logic_error(
        "KConnectivitySketch: result unavailable (finish() not reached or "
        "result already taken)");
  }
  KConnectivityResult out = std::move(*result_);
  result_.reset();
  return out;
}

KConnectivityResult KConnectivitySketch::from_stream(
    const DynamicStream& stream, std::size_t k, const AgmConfig& config) {
  KConnectivitySketch sketch(stream.n(), k, config);
  StreamEngine::run_single(sketch, stream);
  return sketch.take_result();
}

}  // namespace kw
