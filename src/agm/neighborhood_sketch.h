// AGM vertex-neighborhood sketches [AGM12a], Theorem 10 substrate.
//
// Vertex u's incidence vector a_u over the C(n,2) pair coordinates holds
// +mult at pair {u,v} if u is the smaller endpoint and -mult if the larger.
// Summing a_u over a vertex set S cancels every edge inside S and leaves
// exactly the boundary edges -- the property Boruvka-over-sketches needs,
// and the property the paper exploits for supernode collapsing in the
// additive-spanner construction ("an AGM sketch for H can be obtained from
// an AGM sketch for G by adding sketches of vertex neighborhoods").
//
// Each vertex keeps one L0 sampler per Boruvka round (fresh randomness per
// round keeps rounds independent); samplers of the same round share seeds
// across vertices so they can be summed.
#ifndef KW_AGM_NEIGHBORHOOD_SKETCH_H
#define KW_AGM_NEIGHBORHOOD_SKETCH_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sketch/l0_sampler.h"

namespace kw {

struct AgmConfig {
  std::size_t rounds = 12;            // Boruvka rounds supported
  std::size_t sampler_instances = 4;  // repetitions inside each L0 sampler
  std::uint64_t seed = 1;
};

class AgmGraphSketch {
 public:
  AgmGraphSketch(Vertex n, const AgmConfig& config);

  [[nodiscard]] Vertex n() const noexcept { return n_; }
  [[nodiscard]] std::size_t rounds() const noexcept { return config_.rounds; }

  // Stream-facing: apply a signed edge update.
  void update(Vertex u, Vertex v, std::int64_t delta);

  // Subtract an explicit edge multiset (e.g. E_low in Algorithm 3); uses
  // linearity, so this may happen after the stream ends.
  void subtract_edge(Vertex u, Vertex v, std::int64_t multiplicity);

  // this += sign * other (distributed merge).
  void merge(const AgmGraphSketch& other, std::int64_t sign = 1);

  // Sampler of `vertex` for a given round (summed by the forest builder).
  [[nodiscard]] const L0Sampler& sampler(Vertex vertex,
                                         std::size_t round) const {
    return samplers_[vertex * config_.rounds + round];
  }

  // Fresh zero sampler compatible with a round's randomness (accumulator
  // for supernode sums).
  [[nodiscard]] L0Sampler zero_sampler(std::size_t round) const;

  [[nodiscard]] std::size_t nominal_bytes() const noexcept;

 private:
  Vertex n_;
  AgmConfig config_;
  std::vector<L0Sampler> samplers_;  // n * rounds, row-major by vertex
};

}  // namespace kw

#endif  // KW_AGM_NEIGHBORHOOD_SKETCH_H
