// AGM vertex-neighborhood sketches [AGM12a], Theorem 10 substrate.
//
// Vertex u's incidence vector a_u over the C(n,2) pair coordinates holds
// +mult at pair {u,v} if u is the smaller endpoint and -mult if the larger.
// Summing a_u over a vertex set S cancels every edge inside S and leaves
// exactly the boundary edges -- the property Boruvka-over-sketches needs,
// and the property the paper exploits for supernode collapsing in the
// additive-spanner construction ("an AGM sketch for H can be obtained from
// an AGM sketch for G by adding sketches of vertex neighborhoods").
//
// Storage: one flat SketchBank per Boruvka round (fresh randomness per round
// keeps rounds independent; within a round all vertices share the seed so
// their sketches can be summed).  Each round's n per-vertex L0 sketches are
// one contiguous cell array, and edge updates go through the bank's
// signed-pair fast path -- see sketch/sketch_bank.h for the layout.
#ifndef KW_AGM_NEIGHBORHOOD_SKETCH_H
#define KW_AGM_NEIGHBORHOOD_SKETCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sketch/sketch_bank.h"
#include "stream/update.h"

namespace kw {

struct AgmConfig {
  std::size_t rounds = 12;            // Boruvka rounds supported
  std::size_t sampler_instances = 4;  // repetitions inside each L0 sketch
  std::uint64_t seed = 1;
};

class AgmGraphSketch {
 public:
  AgmGraphSketch(Vertex n, const AgmConfig& config);

  [[nodiscard]] Vertex n() const noexcept { return n_; }
  [[nodiscard]] std::size_t rounds() const noexcept { return config_.rounds; }

  // Stream-facing: apply a signed edge update.
  void update(Vertex u, Vertex v, std::int64_t delta);

  // Batched ingest of a whole absorb() batch (self-loops skipped): pair ids
  // are computed once per edge and every round's bank takes the batch
  // through its vectorizable ingest_pairs path.
  void absorb(std::span<const EdgeUpdate> batch);

  // Staging: canonicalizes a batch (self-loop filter, range checks, pair
  // ids) into bank pair updates for vertex set size n.  Staging depends
  // only on (n, batch), so callers holding several same-n sketches (e.g.
  // the k-connectivity layers) stage once and feed each sketch via
  // ingest_staged().
  static void stage(Vertex n, std::span<const EdgeUpdate> batch,
                    std::vector<BankPairUpdate>& out);

  // Ingests updates previously produced by stage() with the same n.
  void ingest_staged(std::span<const BankPairUpdate> staged);

  // Subtract an explicit edge multiset (e.g. E_low in Algorithm 3); uses
  // linearity, so this may happen after the stream ends.
  void subtract_edge(Vertex u, Vertex v, std::int64_t multiplicity);

  // this += sign * other (distributed merge).
  void merge(const AgmGraphSketch& other, std::int64_t sign = 1);

  // The flat per-vertex sketch bank of a round: consumers sum member
  // stripes with accumulate() and decode via decode_cells() (the forest
  // builder), or decode a single vertex directly.
  [[nodiscard]] const SketchBank& round_bank(std::size_t round) const {
    return rounds_[round];
  }

  [[nodiscard]] std::size_t nominal_bytes() const noexcept;

 private:
  Vertex n_;
  AgmConfig config_;
  std::vector<SketchBank> rounds_;         // one bank per round
  std::vector<BankPairUpdate> staging_;    // absorb() batch staging
};

}  // namespace kw

#endif  // KW_AGM_NEIGHBORHOOD_SKETCH_H
