// AGM vertex-neighborhood sketches [AGM12a], Theorem 10 substrate.
//
// Vertex u's incidence vector a_u over the C(n,2) pair coordinates holds
// +mult at pair {u,v} if u is the smaller endpoint and -mult if the larger.
// Summing a_u over a vertex set S cancels every edge inside S and leaves
// exactly the boundary edges -- the property Boruvka-over-sketches needs,
// and the property the paper exploits for supernode collapsing in the
// additive-spanner construction ("an AGM sketch for H can be obtained from
// an AGM sketch for G by adding sketches of vertex neighborhoods").
//
// Storage: ONE fused BankGroup with one group per Boruvka round (fresh
// randomness per round keeps rounds independent; within a round all
// vertices share the seed so their sketches can be summed).  All rounds x
// vertices x instances x levels cells live in one vertex-major allocation,
// and a batched edge update stages its pair id, delta image and weighted
// sums once for ALL rounds -- see sketch/bank_group.h for the layout and
// the fused ingest path.
#ifndef KW_AGM_NEIGHBORHOOD_SKETCH_H
#define KW_AGM_NEIGHBORHOOD_SKETCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "serialize/serialize_fwd.h"
#include "sketch/bank_group.h"
#include "stream/update.h"

namespace kw {

struct AgmConfig {
  std::size_t rounds = 12;            // Boruvka rounds supported
  std::size_t sampler_instances = 4;  // repetitions inside each L0 sketch
  std::uint64_t seed = 1;
};

// The per-round bank seed chain (also used by KConnectivitySketch to lay
// its k layers' rounds into one flat BankGroup with identical randomness).
[[nodiscard]] std::vector<std::uint64_t> agm_round_seeds(
    const AgmConfig& config);

class AgmGraphSketch {
 public:
  AgmGraphSketch(Vertex n, const AgmConfig& config);

  [[nodiscard]] Vertex n() const noexcept { return n_; }
  [[nodiscard]] std::size_t rounds() const noexcept { return config_.rounds; }

  // Stream-facing: apply a signed edge update.
  void update(Vertex u, Vertex v, std::int64_t delta);

  // Batched ingest of a whole absorb() batch (self-loops skipped): pair ids
  // are computed once per edge and the fused BankGroup takes the batch
  // through one staged sweep covering every round.
  void absorb(std::span<const EdgeUpdate> batch);

  // Staging: canonicalizes a batch (self-loop filter, range checks, pair
  // ids) into bank pair updates for vertex set size n.  Staging depends
  // only on (n, batch), so callers holding several same-n sketches stage
  // once and feed each via ingest_staged().  Appends nothing on throw.
  static void stage(Vertex n, std::span<const EdgeUpdate> batch,
                    std::vector<BankPairUpdate>& out);

  // Ingests updates previously produced by stage() with the same n.
  void ingest_staged(std::span<const BankPairUpdate> staged);

  // Subtract an explicit edge multiset (e.g. E_low in Algorithm 3); uses
  // linearity, so this may happen after the stream ends.
  void subtract_edge(Vertex u, Vertex v, std::int64_t multiplicity);

  // this += sign * other (distributed merge).
  void merge(const AgmGraphSketch& other, std::int64_t sign = 1);

  // A round's per-vertex bank surface: consumers sum member stripes with
  // accumulate() and decode via decode_cells() (the forest builder), or
  // decode a single vertex directly.
  [[nodiscard]] BankGroup::View round_bank(std::size_t round) const {
    return group_.view(round);
  }

  // The fused multi-round storage itself.
  [[nodiscard]] const BankGroup& bank_group() const noexcept {
    return group_;
  }

  [[nodiscard]] std::size_t nominal_bytes() const noexcept {
    return group_.nominal_bytes();
  }

  // ---- serialization (src/serialize/sketch_serialize.cc) ---------------
  void serialize(ser::Writer& w) const;
  void deserialize(ser::Reader& r);

 private:
  Vertex n_;
  AgmConfig config_;
  BankGroup group_;                      // one group per round, fused
  std::vector<BankPairUpdate> staging_;  // absorb() batch staging, reused
};

}  // namespace kw

#endif  // KW_AGM_NEIGHBORHOOD_SKETCH_H
