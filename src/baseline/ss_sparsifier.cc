#include "baseline/ss_sparsifier.h"

#include <algorithm>
#include <cmath>

#include "graph/effective_resistance.h"
#include "util/random.h"

namespace kw {

Graph ss_sparsify(const Graph& g, const SsOptions& options,
                  std::uint64_t seed) {
  const auto resistances = options.dense_resistances
                               ? all_edge_resistances_dense(g)
                               : all_edge_resistances(g);
  Rng rng(seed);
  const double logn =
      std::log(std::max<double>(2.0, static_cast<double>(g.n())));
  const double scale =
      options.oversample * logn / (options.epsilon * options.epsilon);
  Graph h(g.n());
  for (std::size_t i = 0; i < g.edges().size(); ++i) {
    const auto& e = g.edges()[i];
    const double pe = std::min(1.0, e.weight * resistances[i] * scale);
    if (pe <= 0.0) continue;
    if (rng.next_bernoulli(pe)) {
      h.add_edge(e.u, e.v, e.weight / pe);
    }
  }
  return h;
}

}  // namespace kw
