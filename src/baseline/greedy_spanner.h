// Classical greedy (2k-1)-spanner [Althofer et al. 1993].
//
// Process edges in nondecreasing weight order; keep an edge iff the current
// spanner distance between its endpoints exceeds (2k-1) times its weight.
// Guarantees stretch 2k-1 and O(n^{1+1/k}) edges -- the offline gold
// standard our streaming constructions are compared against (experiment E9).
#ifndef KW_BASELINE_GREEDY_SPANNER_H
#define KW_BASELINE_GREEDY_SPANNER_H

#include "graph/graph.h"

namespace kw {

// Returns the greedy (2k-1)-spanner of g (k >= 1).  O(m * (m + n log n)).
[[nodiscard]] Graph greedy_spanner(const Graph& g, unsigned k);

}  // namespace kw

#endif  // KW_BASELINE_GREEDY_SPANNER_H
