// Offline +2 additive spanner in O~(n^{3/2}) edges [ACIM99 / DHZ00 style].
//
// Baseline for the additive-spanner experiments (E3): keep all edges of
// low-degree vertices (degree < sqrt(n log n)); hit every high-degree
// neighborhood with a dominating set of size O~(sqrt n); add a BFS tree
// rooted at each dominating center.  Distortion +2 on unweighted graphs.
#ifndef KW_BASELINE_AINGWORTH_ADDITIVE_H
#define KW_BASELINE_AINGWORTH_ADDITIVE_H

#include <cstdint>

#include "graph/graph.h"

namespace kw {

[[nodiscard]] Graph aingworth_additive_spanner(const Graph& g,
                                               std::uint64_t seed);

}  // namespace kw

#endif  // KW_BASELINE_AINGWORTH_ADDITIVE_H
