// Offline Spielman-Srivastava spectral sparsifier (Theorem 7, [SS08]).
//
// Sample each edge independently with probability
// p_e = min(1, C * w_e * R_e * log n / eps^2) and weight surviving edges by
// w_e / p_e.  Effective resistances come from the exact solver substrate.
// This is the quality upper bound the streaming sparsifier (Corollary 2) is
// measured against in experiment E5.
#ifndef KW_BASELINE_SS_SPARSIFIER_H
#define KW_BASELINE_SS_SPARSIFIER_H

#include <cstdint>

#include "graph/graph.h"

namespace kw {

struct SsOptions {
  double epsilon = 0.3;
  double oversample = 0.5;  // the constant C in p_e
  bool dense_resistances = false;  // use the O(n^3) exact backend
};

[[nodiscard]] Graph ss_sparsify(const Graph& g, const SsOptions& options,
                                std::uint64_t seed);

}  // namespace kw

#endif  // KW_BASELINE_SS_SPARSIFIER_H
