#include "baseline/greedy_spanner.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "graph/shortest_paths.h"

namespace kw {

namespace {

// Distance from u to v in h, truncated: abandons paths longer than `limit`
// (returns +inf then).  Keeps the greedy loop fast.
[[nodiscard]] double bounded_distance(const Graph& h, Vertex u, Vertex v,
                                      double limit) {
  std::vector<double> dist(h.n(), kUnreachableDist);
  using Item = std::pair<double, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[u] = 0.0;
  heap.push({0.0, u});
  while (!heap.empty()) {
    const auto [d, x] = heap.top();
    heap.pop();
    if (d > dist[x]) continue;
    if (x == v) return d;
    if (d > limit) return kUnreachableDist;
    for (const auto& nb : h.neighbors(x)) {
      const double cand = d + nb.weight;
      if (cand < dist[nb.to] && cand <= limit) {
        dist[nb.to] = cand;
        heap.push({cand, nb.to});
      }
    }
  }
  return dist[v];
}

}  // namespace

Graph greedy_spanner(const Graph& g, unsigned k) {
  if (k == 0) throw std::invalid_argument("greedy_spanner: k must be >= 1");
  std::vector<Edge> sorted = g.edges();
  std::sort(sorted.begin(), sorted.end(),
            [](const Edge& a, const Edge& b) { return a.weight < b.weight; });
  const double t = 2.0 * k - 1.0;
  Graph h(g.n());
  for (const auto& e : sorted) {
    const double limit = t * e.weight;
    if (bounded_distance(h, e.u, e.v, limit) > limit) {
      h.add_edge(e.u, e.v, e.weight);
    }
  }
  return h;
}

}  // namespace kw
