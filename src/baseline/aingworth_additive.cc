#include "baseline/aingworth_additive.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "graph/shortest_paths.h"
#include "util/random.h"

namespace kw {

Graph aingworth_additive_spanner(const Graph& g, std::uint64_t seed) {
  const Vertex n = g.n();
  Rng rng(seed);
  const double threshold =
      std::sqrt(static_cast<double>(n) *
                std::log(std::max<double>(2.0, static_cast<double>(n)))) + 1.0;

  std::map<std::pair<Vertex, Vertex>, double> keep;
  auto add = [&keep](Vertex u, Vertex v, double w) {
    keep.try_emplace({std::min(u, v), std::max(u, v)}, w);
  };

  // 1. All edges incident on low-degree vertices.
  std::vector<bool> high(n, false);
  for (Vertex v = 0; v < n; ++v) {
    high[v] = static_cast<double>(g.degree(v)) >= threshold;
  }
  for (const auto& e : g.edges()) {
    if (!high[e.u] || !high[e.v]) add(e.u, e.v, e.weight);
  }

  // 2. Random dominating set for high-degree vertices: sampling at rate
  // c*log(n)/threshold hits each large neighborhood whp.
  const double rate = std::min(
      1.0, 3.0 * std::log(std::max<double>(2.0, static_cast<double>(n))) /
               threshold);
  std::vector<Vertex> centers;
  for (Vertex v = 0; v < n; ++v) {
    if (rng.next_bernoulli(rate)) centers.push_back(v);
  }
  // Ensure domination deterministically: any uncovered high-degree vertex
  // promotes one neighbor (keeps the +2 guarantee regardless of luck).
  std::vector<bool> covered(n, false);
  auto mark_cover = [&](Vertex c) {
    covered[c] = true;
    for (const auto& nb : g.neighbors(c)) covered[nb.to] = true;
  };
  for (const Vertex c : centers) mark_cover(c);
  for (Vertex v = 0; v < n; ++v) {
    if (high[v] && !covered[v]) {
      centers.push_back(v);
      mark_cover(v);
    }
  }

  // 3. BFS tree from every center.
  for (const Vertex c : centers) {
    // Parent pointers via BFS.
    std::vector<Vertex> parent(n, kInvalidVertex);
    std::vector<std::uint32_t> dist(n, kUnreachableHops);
    std::vector<Vertex> frontier{c};
    dist[c] = 0;
    while (!frontier.empty()) {
      std::vector<Vertex> next;
      for (const Vertex x : frontier) {
        for (const auto& nb : g.neighbors(x)) {
          if (dist[nb.to] == kUnreachableHops) {
            dist[nb.to] = dist[x] + 1;
            parent[nb.to] = x;
            next.push_back(nb.to);
          }
        }
      }
      frontier.swap(next);
    }
    for (Vertex v = 0; v < n; ++v) {
      if (parent[v] != kInvalidVertex) add(v, parent[v], 1.0);
    }
  }

  Graph h(n);
  for (const auto& [key, w] : keep) h.add_edge(key.first, key.second, w);
  return h;
}

}  // namespace kw
