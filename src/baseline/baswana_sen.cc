#include "baseline/baswana_sen.h"

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/random.h"

namespace kw {

Graph baswana_sen_spanner(const Graph& g, unsigned k, std::uint64_t seed) {
  if (k == 0) throw std::invalid_argument("baswana_sen: k must be >= 1");
  if (k == 1) return g;
  const Vertex n = g.n();
  Rng rng(seed);
  Graph spanner(n);

  // cluster[v]: id of v's cluster center, or kInvalidVertex if unclustered.
  std::vector<Vertex> cluster(n);
  for (Vertex v = 0; v < n; ++v) cluster[v] = v;
  const double rate = std::pow(static_cast<double>(n), -1.0 / k);

  for (unsigned phase = 0; phase + 1 < k; ++phase) {
    // Sample surviving cluster centers.
    std::vector<bool> sampled_center(n, false);
    for (Vertex c = 0; c < n; ++c) {
      sampled_center[c] = rng.next_bernoulli(rate);
    }
    std::vector<Vertex> next_cluster(n, kInvalidVertex);
    // Vertices in sampled clusters stay.
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] != kInvalidVertex && sampled_center[cluster[v]]) {
        next_cluster[v] = cluster[v];
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] == kInvalidVertex || next_cluster[v] != kInvalidVertex) {
        continue;  // already settled (or not participating)
      }
      // Least-weight edge to a sampled neighboring cluster, if any.
      const Neighbor* to_sampled = nullptr;
      for (const auto& nb : g.neighbors(v)) {
        const Vertex c = cluster[nb.to];
        if (c == kInvalidVertex || !sampled_center[c]) continue;
        if (to_sampled == nullptr || nb.weight < to_sampled->weight) {
          to_sampled = &nb;
        }
      }
      if (to_sampled != nullptr) {
        // Join that cluster through this edge; also keep one edge to every
        // neighboring cluster with smaller weight than the joining edge.
        spanner.add_edge(v, to_sampled->to, to_sampled->weight);
        next_cluster[v] = cluster[to_sampled->to];
        std::map<Vertex, const Neighbor*> best;
        for (const auto& nb : g.neighbors(v)) {
          const Vertex c = cluster[nb.to];
          if (c == kInvalidVertex || nb.weight >= to_sampled->weight) continue;
          auto [it, inserted] = best.try_emplace(c, &nb);
          if (!inserted && nb.weight < it->second->weight) it->second = &nb;
        }
        for (const auto& [c, nb] : best) {
          spanner.add_edge(v, nb->to, nb->weight);
        }
      } else {
        // No sampled neighbor: keep one least-weight edge per neighboring
        // cluster and leave the clustering.
        std::map<Vertex, const Neighbor*> best;
        for (const auto& nb : g.neighbors(v)) {
          const Vertex c = cluster[nb.to];
          if (c == kInvalidVertex) continue;
          auto [it, inserted] = best.try_emplace(c, &nb);
          if (!inserted && nb.weight < it->second->weight) it->second = &nb;
        }
        for (const auto& [c, nb] : best) {
          spanner.add_edge(v, nb->to, nb->weight);
        }
      }
    }
    cluster = next_cluster;
  }

  // Final phase: every vertex keeps one least-weight edge to each adjacent
  // surviving cluster.
  for (Vertex v = 0; v < n; ++v) {
    std::map<Vertex, const Neighbor*> best;
    for (const auto& nb : g.neighbors(v)) {
      const Vertex c = cluster[nb.to];
      if (c == kInvalidVertex) continue;
      if (cluster[v] != kInvalidVertex && c == cluster[v]) continue;
      auto [it, inserted] = best.try_emplace(c, &nb);
      if (!inserted && nb.weight < it->second->weight) it->second = &nb;
    }
    for (const auto& [c, nb] : best) {
      spanner.add_edge(v, nb->to, nb->weight);
    }
  }

  // Deduplicate parallel edges introduced by symmetric insertions.
  std::map<std::pair<Vertex, Vertex>, double> dedup;
  for (const auto& e : spanner.edges()) {
    const auto key = std::make_pair(std::min(e.u, e.v), std::max(e.u, e.v));
    auto [it, inserted] = dedup.try_emplace(key, e.weight);
    if (!inserted && e.weight < it->second) it->second = e.weight;
  }
  Graph out(n);
  for (const auto& [key, w] : dedup) out.add_edge(key.first, key.second, w);
  return out;
}

}  // namespace kw
