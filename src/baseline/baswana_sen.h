// Baswana-Sen randomized (2k-1)-spanner [BS07].
//
// The offline algorithm the paper explicitly contrasts with: Section 3 notes
// the two-pass construction "does not seem to be a less adaptive
// implementation of Baswana and Sen" -- we implement BS07 so experiment E9
// can compare cluster growth (BS07: radius +1 per phase; KW14: diameter
// doubles per phase) and the resulting size/stretch tradeoffs.
//
// k-1 clustering phases: sample cluster centers at rate n^{-1/k} per phase;
// unsampled vertices adjacent to a sampled cluster join it via one edge,
// others keep one edge per neighboring cluster.  Phase k-1 joins every
// vertex to each adjacent cluster.  Stretch 2k-1, expected size O(k n^{1+1/k}).
#ifndef KW_BASELINE_BASWANA_SEN_H
#define KW_BASELINE_BASWANA_SEN_H

#include <cstdint>

#include "graph/graph.h"

namespace kw {

// Unweighted Baswana-Sen (weights ignored for clustering, preserved on
// output edges).  k >= 1; k == 1 returns g itself (stretch 1).
[[nodiscard]] Graph baswana_sen_spanner(const Graph& g, unsigned k,
                                        std::uint64_t seed);

}  // namespace kw

#endif  // KW_BASELINE_BASWANA_SEN_H
