// Generates tests/data/kp12_checkpoint_v2.kwsk: a mid-pass-2 KP12
// sparsifier checkpoint in envelope format v2, used by the backward-compat
// suite in tests/test_arena_compat.cc.
//
// The committed fixture bytes were produced by the PR-9-era build (entry
// cell blocks stored as per-entry heap vectors, before the slab-arena
// layout), so the suite proves that arena-backed banks restore the
// historical byte stream bit-identically.  Regenerating with a newer build
// must produce the SAME bytes (the wire format is layout-independent); the
// generator stays in-tree so that property is easy to re-check:
//
//   cmake --build build -j --target make_kp12_fixture   # or link by hand
//   ./build/make_kp12_fixture tests/data/kp12_checkpoint_v2.kwsk
#include <cstdio>
#include <fstream>
#include <span>
#include <string>

#include "core/kp12_sparsifier.h"
#include "graph/generators.h"
#include "serialize/serialize.h"
#include "stream/dynamic_stream.h"

int main(int argc, char** argv) {
  using namespace kw;
  const std::string out =
      argc > 1 ? argv[1] : "tests/data/kp12_checkpoint_v2.kwsk";

  // Workload and cut mirror tests/test_arena_compat.cc exactly; any change
  // here must be mirrored there.
  const Vertex n = 16;
  const Graph g = erdos_renyi_gnm(n, 3ULL * n, /*seed=*/7);
  const DynamicStream stream = DynamicStream::with_churn(g, 2ULL * n,
                                                         /*seed=*/11);
  const auto& ups = stream.updates();

  Kp12Config config;
  config.k = 2;
  config.epsilon = 0.5;
  config.seed = 13;
  config.j_copies = 2;
  config.z_samples = 2;
  config.ingest_workers = 1;

  Kp12Sparsifier sparsifier(n, config);
  constexpr std::size_t kBatch = 1024;
  const auto feed = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; i += kBatch) {
      const std::size_t len = std::min(kBatch, end - i);
      sparsifier.absorb(std::span<const EdgeUpdate>{ups.data() + i, len});
    }
  };
  feed(0, ups.size());
  sparsifier.advance_pass();
  // Mid-pass-2 cut: a short prefix is enough to materialize live bank cell
  // state in every instance while keeping the committed fixture small.
  feed(0, std::min<std::size_t>(8, ups.size()));

  const std::string bytes = ser::save_to_bytes(sparsifier);
  std::ofstream f(out, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.close();
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bytes)\n", out.c_str(), bytes.size());
  return 0;
}
