#!/usr/bin/env python3
"""Dump the header of a .kwsk serialized-sketch or checkpoint file.

Usage: inspect_checkpoint.py FILE [FILE ...]

Stdlib-only.  Understands the KWSK envelope (magic, version, type tag,
payload length, trailing CRC-32) of every file written by src/serialize/,
verifies the checksum, and for engine checkpoints (tag CKPT) additionally
decodes the checkpoint header -- vertex count, pass, mid-pass update
offset -- and the per-processor table of contents, so an operator can see
what a crashed run left behind without linking the C++ library.

Exit code: 0 if every file parsed and passed its CRC, 1 otherwise.
"""

import struct
import sys
import zlib

MAGIC = 0x4B53574B  # 'KWSK' little-endian
HEADER = struct.Struct("<IIIQ")  # magic, version, tag, payload length

TAG_NAMES = {
    "BKGR": "BankGroup",
    "SKBK": "SketchBank",
    "SPRS": "SparseRecoverySketch",
    "DSTE": "DistinctElementsSketch",
    "LKVS": "LinearKeyValueSketch",
    "AGMS": "AgmGraphSketch",
    "TPSP": "TwoPassSpanner",
    "SPFP": "SpanningForestProcessor",
    "KCON": "KConnectivitySketch",
    "KP12": "Kp12Sparsifier",
    "MPSP": "MultipassSpanner",
    "ADSP": "AdditiveSpannerSketch",
    "DEMX": "DemuxProcessor",
    "CKPT": "StreamEngine checkpoint",
}


def fourcc(tag):
    raw = struct.pack("<I", tag)
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError:
        return f"0x{tag:08x}"
    return text if text.isprintable() else f"0x{tag:08x}"


def human(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024.0
    return f"{n} B"


def dump_checkpoint_payload(payload):
    """CKPT payload: u32 n, u64 pass, u64 offset, u64 count, then per
    processor u32 tag + u64 length + that many payload bytes."""
    head = struct.Struct("<IQQQ")
    if len(payload) < head.size:
        print("  checkpoint payload truncated")
        return False
    n, pass_idx, offset, count = head.unpack_from(payload, 0)
    print(f"  vertices           : {n}")
    print(f"  pass               : {pass_idx}")
    print(f"  updates into pass  : {offset}")
    print(f"  processors         : {count}")
    pos = head.size
    entry = struct.Struct("<IQ")
    for i in range(count):
        if pos + entry.size > len(payload):
            print(f"  processor[{i}]: table of contents truncated")
            return False
        tag, length = entry.unpack_from(payload, pos)
        pos += entry.size
        cc = fourcc(tag)
        name = TAG_NAMES.get(cc, "unknown type")
        print(f"  processor[{i}]       : {cc} ({name}), {human(length)}")
        pos += length
    if pos != len(payload):
        print(f"  WARNING: {len(payload) - pos} unparsed trailing bytes")
        return False
    return True


def inspect(path):
    print(f"{path}:")
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        print(f"  cannot read: {e}")
        return False
    if len(blob) < HEADER.size + 4:
        print(f"  too short for a KWSK envelope ({len(blob)} bytes)")
        return False
    magic, version, tag, length = HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        print(f"  bad magic 0x{magic:08x} (want 0x{MAGIC:08x} 'KWSK')")
        return False
    cc = fourcc(tag)
    print(f"  format version     : {version}")
    print(f"  type               : {cc} ({TAG_NAMES.get(cc, 'unknown type')})")
    print(f"  payload            : {human(length)}")
    expected_size = HEADER.size + length + 4
    if len(blob) < expected_size:
        print(f"  TRUNCATED: file is {len(blob)} bytes, envelope needs "
              f"{expected_size}")
        return False
    if len(blob) > expected_size:
        print(f"  note: {len(blob) - expected_size} bytes follow the "
              "envelope (concatenated stream?)")
    (stored_crc,) = struct.unpack_from("<I", blob, HEADER.size + length)
    actual_crc = zlib.crc32(blob[: HEADER.size + length]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        print(f"  CRC MISMATCH: stored 0x{stored_crc:08x}, computed "
              f"0x{actual_crc:08x}")
        return False
    print(f"  crc32              : 0x{stored_crc:08x} (ok)")
    if cc == "CKPT":
        payload = blob[HEADER.size : HEADER.size + length]
        return dump_checkpoint_payload(payload)
    return True


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if len(argv) >= 2 else 1
    ok = True
    for path in argv[1:]:
        ok = inspect(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
