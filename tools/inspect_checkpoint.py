#!/usr/bin/env python3
"""Dump and verify the KWSK envelope of serialized-sketch / checkpoint files.

Usage: inspect_checkpoint.py [--verify] FILE [FILE ...]

Stdlib-only.  Understands the KWSK envelope (magic, version, type tag,
payload length, trailing CRC-32) of every file written by src/serialize/,
verifies the checksum, and for engine checkpoints (tag CKPT) additionally
decodes the checkpoint header -- vertex count, pass, mid-pass update
offset -- and walks the per-processor table of contents (every section must
lie inside the payload and the sections must tile it exactly), so an
operator can see what a crashed run left behind without linking the C++
library.

Default exit code: 0 if every file parsed and passed its CRC, 1 otherwise.

--verify: machine-friendly deep check with distinct exit codes, so recovery
scripts can decide between "retry the .prev sibling" and "the disk is
lying":
    0  every file intact
    2  at least one file TRUNCATED (short header, payload cut, or a CKPT
       table of contents that runs off the end) and none corrupt
    3  at least one file CORRUPT (bad magic/version, CRC mismatch, or a
       CRC-valid CKPT payload whose section bounds are inconsistent)
    1  other failure (unreadable file, bad usage)
"""

import struct
import sys
import zlib

MAGIC = 0x4B53574B  # 'KWSK' little-endian
HEADER = struct.Struct("<IIIQ")  # magic, version, tag, payload length

TAG_NAMES = {
    "BKGR": "BankGroup",
    "SKBK": "SketchBank",
    "SPRS": "SparseRecoverySketch",
    "DSTE": "DistinctElementsSketch",
    "LKVS": "LinearKeyValueSketch",
    "AGMS": "AgmGraphSketch",
    "TPSP": "TwoPassSpanner",
    "SPFP": "SpanningForestProcessor",
    "KCON": "KConnectivitySketch",
    "KP12": "Kp12Sparsifier",
    "MPSP": "MultipassSpanner",
    "ADSP": "AdditiveSpannerSketch",
    "DEMX": "DemuxProcessor",
    "CKPT": "StreamEngine checkpoint",
}

# Verdicts, in severity order for the --verify exit code.
OK = "ok"
TRUNCATED = "truncated"
CORRUPT = "corrupt"
ERROR = "error"


def fourcc(tag):
    raw = struct.pack("<I", tag)
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError:
        return f"0x{tag:08x}"
    return text if text.isprintable() else f"0x{tag:08x}"


def human(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024.0
    return f"{n} B"


def walk_checkpoint_payload(payload):
    """CKPT payload: u32 n, u64 pass, u64 offset, u64 count, then per
    processor u32 tag + u64 length + that many payload bytes.  The walk is
    the section-bounds check: every entry must fit and the entries must
    tile the payload exactly."""
    head = struct.Struct("<IQQQ")
    if len(payload) < head.size:
        print("  checkpoint payload truncated")
        return TRUNCATED
    n, pass_idx, offset, count = head.unpack_from(payload, 0)
    print(f"  vertices           : {n}")
    print(f"  pass               : {pass_idx}")
    print(f"  updates into pass  : {offset}")
    print(f"  processors         : {count}")
    pos = head.size
    entry = struct.Struct("<IQ")
    for i in range(count):
        if pos + entry.size > len(payload):
            print(f"  processor[{i}]: table of contents truncated")
            return TRUNCATED
        tag, length = entry.unpack_from(payload, pos)
        pos += entry.size
        cc = fourcc(tag)
        name = TAG_NAMES.get(cc, "unknown type")
        if length > len(payload) - pos:
            print(f"  processor[{i}]       : {cc} ({name}), section claims "
                  f"{human(length)} but only {human(len(payload) - pos)} "
                  "remain -- BOUNDS VIOLATION")
            return TRUNCATED
        print(f"  processor[{i}]       : {cc} ({name}), {human(length)}")
        pos += length
    if pos != len(payload):
        # The CRC already passed, so the writer itself produced an
        # inconsistent table: corruption, not a torn write.
        print(f"  CORRUPT: {len(payload) - pos} unparsed trailing bytes")
        return CORRUPT
    return OK


def inspect(path):
    print(f"{path}:")
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        print(f"  cannot read: {e}")
        return ERROR
    if len(blob) < HEADER.size + 4:
        print(f"  TRUNCATED: too short for a KWSK envelope "
              f"({len(blob)} bytes)")
        return TRUNCATED
    magic, version, tag, length = HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        print(f"  CORRUPT: bad magic 0x{magic:08x} (want 0x{MAGIC:08x} "
              "'KWSK')")
        return CORRUPT
    cc = fourcc(tag)
    print(f"  format version     : {version}")
    print(f"  type               : {cc} ({TAG_NAMES.get(cc, 'unknown type')})")
    print(f"  payload            : {human(length)}")
    expected_size = HEADER.size + length + 4
    if len(blob) < expected_size:
        print(f"  TRUNCATED: file is {len(blob)} bytes, envelope needs "
              f"{expected_size}")
        return TRUNCATED
    if len(blob) > expected_size:
        print(f"  note: {len(blob) - expected_size} bytes follow the "
              "envelope (concatenated stream?)")
    (stored_crc,) = struct.unpack_from("<I", blob, HEADER.size + length)
    actual_crc = zlib.crc32(blob[: HEADER.size + length]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        print(f"  CRC MISMATCH: stored 0x{stored_crc:08x}, computed "
              f"0x{actual_crc:08x}")
        return CORRUPT
    print(f"  crc32              : 0x{stored_crc:08x} (ok)")
    if cc == "CKPT":
        payload = blob[HEADER.size : HEADER.size + length]
        return walk_checkpoint_payload(payload)
    return OK


def main(argv):
    args = argv[1:]
    verify = False
    if args and args[0] == "--verify":
        verify = True
        args = args[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if args else 1
    verdicts = [inspect(path) for path in args]
    if not verify:
        return 0 if all(v == OK for v in verdicts) else 1
    if ERROR in verdicts:
        return 1
    if CORRUPT in verdicts:
        return 3
    if TRUNCATED in verdicts:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
