#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.10]
                        [--strict] [--fail-over PCT]

Matches results by name and warns when `updates_per_sec` dropped by more than
the threshold (default 10%).  Rows present on only one side (a bench adding
or retiring a measurement) are WARNINGS, never failures -- a renamed or new
row should not block the PR that introduces it; only a measured regression
on a row both sides share can fail.  Exit code is 0 unless:
  * --strict is given and ANY regression beyond --threshold was found, or
  * --fail-over PCT is given and some shared measurement regressed by more
    than PCT percent.

--normalize-by NAME divides every measurement by measurement NAME on BOTH
sides before comparing, turning the absolute updates/sec compare into a
machine-relative one.  CI uses `--normalize-by bank_update_scalar
--fail-over 25`: bank_update_scalar is the stable legacy-arithmetic row that
every PR leaves untouched, so it calibrates out runner-speed differences,
and only a >25% drop RELATIVE to the machine's own speed fails the job.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return data, {r["name"]: r for r in data.get("results", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative drop that counts as a regression")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression instead of warning")
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="exit 1 if any measurement regressed by more "
                             "than PCT percent (or went missing)")
    parser.add_argument("--normalize-by", default=None, metavar="NAME",
                        help="divide both sides by measurement NAME first "
                             "(cancels out machine-speed differences)")
    args = parser.parse_args()

    base_meta, baseline = load(args.baseline)
    cur_meta, current = load(args.current)

    base_hw = base_meta.get("hardware_threads")
    cur_hw = cur_meta.get("hardware_threads")
    if base_hw is not None and cur_hw is not None and base_hw != cur_hw:
        # Worker-sweep rows (ingest_w*/decode_w*) scale with the lane budget,
        # so cross-machine compares of those rows measure the hardware, not
        # the code.  Warn-only: the normalized compare still calibrates the
        # single-lane rows.
        print(f"WARNING: baseline was recorded with hardware_threads="
              f"{base_hw} but this machine has {cur_hw}; threaded worker-"
              "sweep rows are not comparable across different lane budgets")

    norm_base = norm_cur = 1.0
    if args.normalize_by is not None:
        anchor_b = baseline.get(args.normalize_by)
        anchor_c = current.get(args.normalize_by)
        if anchor_b is None or anchor_c is None:
            print(f"ERROR: --normalize-by {args.normalize_by} missing from "
                  "baseline or current run")
            return 1
        norm_base = anchor_b["updates_per_sec"]
        norm_cur = anchor_c["updates_per_sec"]
        if norm_base <= 0 or norm_cur <= 0:
            print(f"ERROR: --normalize-by {args.normalize_by} is non-positive")
            return 1
        print(f"normalizing by {args.normalize_by}: baseline "
              f"{norm_base:,.0f}, current {norm_cur:,.0f} updates/sec")
        if norm_cur < norm_base * (1.0 - args.threshold):
            # The anchor's own ratio is 1.0 by construction, so a shared-
            # path regression that slows the anchor too would otherwise be
            # invisible; surface its absolute drift (warn-only: absolute
            # numbers still vary with runner hardware).
            print(f"WARNING: anchor {args.normalize_by} absolute throughput "
                  f"dropped {(1.0 - norm_cur / norm_base) * 100:.1f}% vs "
                  "baseline (runner speed or a shared-path regression; the "
                  "normalized compare cannot tell them apart)")

    regressions = []
    failures = []
    fail_ratio = (1.0 - args.fail_over / 100.0
                  if args.fail_over is not None else None)
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"WARNING  {name}: present in baseline, absent in current "
                  "run (retired or renamed row; not a failure)")
            continue
        b, c = base["updates_per_sec"] / norm_base, cur["updates_per_sec"] / norm_cur
        ratio = c / b if b else float("inf")
        tag = "ok"
        if ratio < 1.0 - args.threshold:
            tag = "REGRESSION"
            regressions.append(name)
        elif ratio > 1.0 + args.threshold:
            tag = "improved"
        if fail_ratio is not None and ratio < fail_ratio:
            tag = "FAIL"
            failures.append(name)
        unit = "x anchor" if args.normalize_by is not None else "updates/sec"
        fmt = ",.2f" if args.normalize_by is not None else ",.0f"
        print(f"{tag:>10}  {name}: {b:{fmt}} -> {c:{fmt}} {unit} "
              f"({(ratio - 1.0) * 100:+.1f}%)")

    for name in sorted(set(current) - set(baseline)):
        print(f"   WARNING  {name}: "
              f"{current[name]['updates_per_sec']:,.0f} updates/sec is new "
              "(no baseline row; commit a re-baselined JSON to track it)")

    if regressions:
        print(f"\nWARNING: {len(regressions)} measurement(s) regressed more "
              f"than {args.threshold:.0%} vs {args.baseline}")
    else:
        print("\nAll measurements within threshold of the baseline.")
    if args.fail_over is not None and failures:
        print(f"FAIL: {len(failures)} measurement(s) regressed more than "
              f"{args.fail_over:.0f}%: {', '.join(failures)}")
        return 1
    if args.strict and regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
