#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.10] [--strict]

Matches results by name and warns when `updates_per_sec` dropped by more than
the threshold (default 10%).  Exit code is 0 unless --strict is given and a
regression was found; CI runs non-strict because runner hardware varies, so
the output is a visibility signal, not a gate.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {r["name"]: r for r in data.get("results", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative drop that counts as a regression")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression instead of warning")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    regressions = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"MISSING  {name}: present in baseline, absent in current run")
            regressions.append(name)
            continue
        b, c = base["updates_per_sec"], cur["updates_per_sec"]
        ratio = c / b if b else float("inf")
        tag = "ok"
        if ratio < 1.0 - args.threshold:
            tag = "REGRESSION"
            regressions.append(name)
        elif ratio > 1.0 + args.threshold:
            tag = "improved"
        print(f"{tag:>10}  {name}: {b:,.0f} -> {c:,.0f} updates/sec "
              f"({(ratio - 1.0) * 100:+.1f}%)")

    for name in sorted(set(current) - set(baseline)):
        print(f"       new  {name}: {current[name]['updates_per_sec']:,.0f} "
              "updates/sec (no baseline)")

    if regressions:
        print(f"\nWARNING: {len(regressions)} measurement(s) regressed more "
              f"than {args.threshold:.0%} vs {args.baseline}")
        if args.strict:
            return 1
    else:
        print("\nAll measurements within threshold of the baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
